//! Offline stand-in for the `rand` crate (see `shims/README.md`).
//!
//! Provides the sampling surface this workspace uses: the [`Rng`] trait
//! with `random`, `random_range` and `random_bool`, plus [`SeedableRng`]
//! with the standard SplitMix64 `seed_from_u64` seed expansion. Streams
//! are deterministic and portable but not bit-compatible with upstream
//! `rand`.

use std::ops::{Range, RangeInclusive};

/// A source of randomness: the sampling methods are all derived from
/// [`Rng::next_u64`].
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Sample a value uniformly from `T`'s standard distribution
    /// (`[0, 1)` for floats, the full range for integers, fair coin for
    /// `bool`).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    ///
    /// Panics on an empty range, like upstream `rand`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

/// Extension alias kept for import compatibility: upstream splits the
/// sampling helpers into an extension trait; here they all live on
/// [`Rng`], so `RngExt` is the same trait under a second name.
pub use self::Rng as RngExt;

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// Types with a standard uniform distribution for [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draw one value from the standard distribution.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: Rng>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl StandardUniform for $t {
            fn sample_standard<R: Rng>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by widening multiply (Lemire-style
/// without the rejection loop; the bias is < 2^-32 for the bounds this
/// workspace uses and irrelevant for simulation quality).
fn uniform_below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + uniform_below(rng, span) as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start as i128 + uniform_below(rng, span + 1) as i128) as $t
                }
            }
        )*
    };
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let u: f64 = rng.random();
                    (self.start as f64 + u * (self.end as f64 - self.start as f64)) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let u: f64 = rng.random();
                    (start as f64 + u * (end as f64 - start as f64)) as $t
                }
            }
        )*
    };
}
impl_range_float!(f32, f64);

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (the upstream
    /// algorithm, so seeds stay stable and well-distributed).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Small xoshiro256**-based default RNG, used by the `proptest` shim.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> SmallRng {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        SmallRng { s }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(rng().next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = rng();
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            let k: usize = r.random_range(0..4);
            assert!(k < 4);
            seen[k] = true;
            let v: i64 = r.random_range(-5..=5);
            assert!((-5..=5).contains(&v));
            let f: f64 = r.random_range(1.5..2.5);
            assert!((1.5..2.5).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut r = rng();
        let hits = (0..20_000).filter(|_| r.random_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn mean_is_centred() {
        let mut r = rng();
        let sum: f64 = (0..50_000).map(|_| r.random::<f64>()).sum();
        let mean = sum / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut r = rng();
        let _: usize = r.random_range(3..3);
    }
}
