//! Offline stand-in for `rayon` (see `shims/README.md`).
//!
//! Covers the slice-parallelism subset this workspace uses:
//! `par_chunks(..).map(..).collect()` plus `ThreadPoolBuilder` /
//! `ThreadPool::install`. The map stage really runs on scoped OS
//! threads (one per work item, capped), so chunk-per-worker callers get
//! genuine parallelism; there is no global pool or work splitting
//! beyond that.

use std::fmt;
use std::thread;

/// Re-exports that `use rayon::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::{ParallelIterator, ParallelSlice};
}

/// Error from [`ThreadPoolBuilder::build`]. The shim never actually
/// fails to build, but the type keeps call sites source-compatible.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with the default thread count.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Request `num_threads` workers (0 = default).
    pub fn num_threads(mut self, num_threads: usize) -> ThreadPoolBuilder {
        self.num_threads = num_threads;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let num_threads = if self.num_threads == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads })
    }
}

/// A (virtual) worker pool. Threads are spawned per parallel call
/// rather than kept resident; `install` just runs the closure, whose
/// inner parallel iterators spawn scoped threads themselves.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` "inside" the pool.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        op()
    }
}

/// Conversion target for [`ParallelIterator::collect`].
pub trait FromParallelIterator<T> {
    /// Build the collection from results in original item order.
    fn from_ordered_results(results: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_results(results: Vec<T>) -> Vec<T> {
        results
    }
}

/// Minimal parallel-iterator protocol: producers yield an ordered item
/// list and `map` fans the items out across scoped threads.
pub trait ParallelIterator: Sized {
    /// Item type flowing through the iterator.
    type Item: Send;

    /// Resolve to the ordered list of items.
    fn into_ordered_results(self) -> Vec<Self::Item>;

    /// Apply `f` to every item in parallel, preserving order.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Pair every item with its ordinal position.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Gather results in item order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_ordered_results(self.into_ordered_results())
    }
}

/// A mapped parallel iterator (see [`ParallelIterator::map`]).
pub struct Map<B, F> {
    base: B,
    f: F,
}

/// Upper bound on threads spawned by one `map`; items beyond it are
/// grouped into contiguous stripes so tiny chunk sizes stay safe.
const MAX_MAP_THREADS: usize = 16;

impl<B, F, R> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    B::Item: Send,
    F: Fn(B::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn into_ordered_results(self) -> Vec<R> {
        let items = self.base.into_ordered_results();
        if items.is_empty() {
            return Vec::new();
        }
        let f = &self.f;
        let stripe = items.len().div_ceil(MAX_MAP_THREADS).max(1);
        let mut stripes: Vec<Vec<B::Item>> = Vec::new();
        let mut items = items.into_iter();
        loop {
            let chunk: Vec<B::Item> = items.by_ref().take(stripe).collect();
            if chunk.is_empty() {
                break;
            }
            stripes.push(chunk);
        }
        thread::scope(|scope| {
            let handles: Vec<_> = stripes
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("parallel map worker panicked"))
                .collect()
        })
    }
}

/// An enumerated parallel iterator (see [`ParallelIterator::enumerate`]).
pub struct Enumerate<B> {
    base: B,
}

impl<B> ParallelIterator for Enumerate<B>
where
    B: ParallelIterator,
    B::Item: Send,
{
    type Item = (usize, B::Item);

    fn into_ordered_results(self) -> Vec<(usize, B::Item)> {
        self.base
            .into_ordered_results()
            .into_iter()
            .enumerate()
            .collect()
    }
}

/// Slice extension providing chunked parallel iteration.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over contiguous `chunk_size` chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel chunk iterator over a slice (see [`ParallelSlice`]).
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn into_ordered_results(self) -> Vec<&'a [T]> {
        self.slice.chunks(self.chunk_size).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn par_chunks_map_collect_preserves_order() {
        let data: Vec<u64> = (0..103).collect();
        let sums: Vec<u64> = data
            .par_chunks(10)
            .map(|chunk| chunk.iter().sum())
            .collect();
        let expected: Vec<u64> = data.chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn map_runs_on_multiple_threads_when_available() {
        let data: Vec<usize> = (0..64).collect();
        let ids = Mutex::new(HashSet::new());
        let _: Vec<usize> = data
            .par_chunks(4)
            .map(|c| {
                ids.lock().unwrap().insert(std::thread::current().id());
                c.len()
            })
            .collect();
        // At least one worker thread ran (scoped threads are real even
        // on a single-core host).
        assert!(!ids.lock().unwrap().is_empty());
    }

    #[test]
    fn enumerate_pairs_chunks_with_ordinals() {
        let data: Vec<u64> = (0..23).collect();
        let out: Vec<(usize, usize)> = data
            .par_chunks(6)
            .enumerate()
            .map(|(i, c)| (i, c.len()))
            .collect();
        assert_eq!(out, vec![(0, 6), (1, 6), (2, 6), (3, 5)]);
    }

    #[test]
    fn empty_slice_collects_empty() {
        let data: Vec<u8> = Vec::new();
        let out: Vec<usize> = data.par_chunks(8).map(<[u8]>::len).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn pool_builds_and_installs() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        assert_eq!(pool.install(|| 41 + 1), 42);
    }
}
