//! Offline stand-in for `proptest` (see `shims/README.md`).
//!
//! Implements the subset this workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_flat_map`, range / tuple / [`collection::vec`] /
//! [`array::uniform5`] strategies, and the `proptest!` / `prop_assert!`
//! family of macros. Cases are generated from a deterministic RNG seeded
//! per test name, so runs are reproducible. **No shrinking**: a failing
//! case is reported as drawn, not minimised.

pub mod strategy;
pub mod test_runner;

/// Strategies over collections (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{Reject, Strategy};
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element count for [`vec`]: an exact size or a sampled range.
    #[derive(Debug, Clone, Copy)]
    pub enum SizeSpec {
        /// Exactly this many elements.
        Exact(usize),
        /// Uniform in `[lo, hi)`.
        Bounds(usize, usize),
    }

    impl From<usize> for SizeSpec {
        fn from(n: usize) -> SizeSpec {
            SizeSpec::Exact(n)
        }
    }

    impl From<Range<usize>> for SizeSpec {
        fn from(r: Range<usize>) -> SizeSpec {
            SizeSpec::Bounds(r.start, r.end)
        }
    }

    impl From<RangeInclusive<usize>> for SizeSpec {
        fn from(r: RangeInclusive<usize>) -> SizeSpec {
            SizeSpec::Bounds(*r.start(), *r.end() + 1)
        }
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeSpec>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeSpec,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Reject> {
            let n = match self.size {
                SizeSpec::Exact(n) => n,
                SizeSpec::Bounds(lo, hi) => {
                    assert!(lo < hi, "empty vec size range");
                    rng.random_range(lo..hi)
                }
            };
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Strategies over fixed-size arrays (`proptest::array::uniform5`).
pub mod array {
    use crate::strategy::{Reject, Strategy};
    use crate::test_runner::TestRng;

    /// `[T; 5]` strategy with every element drawn from `element`.
    pub fn uniform5<S: Strategy>(element: S) -> UniformArray5<S> {
        UniformArray5 { element }
    }

    /// See [`uniform5`].
    pub struct UniformArray5<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for UniformArray5<S> {
        type Value = [S::Value; 5];

        fn new_value(&self, rng: &mut TestRng) -> Result<[S::Value; 5], Reject> {
            Ok([
                self.element.new_value(rng)?,
                self.element.new_value(rng)?,
                self.element.new_value(rng)?,
                self.element.new_value(rng)?,
                self.element.new_value(rng)?,
            ])
        }
    }
}

/// The glob import test files start from.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declare property tests: an optional
/// `#![proptest_config(ProptestConfig::with_cases(N))]` header followed
/// by `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@config ($config:expr)) => {};
    (@config ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new_seeded(
                $config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            let strategy = ($($s,)+);
            runner.run(&strategy, |($($p,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { @config ($config) $($rest)* }
    };
}

/// Assert inside a property test; failure fails this case with a message
/// instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Discard this case (does not count towards the case target).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::format!($($fmt)+),
            ));
        }
    };
}
