//! Case generation loop, configuration and failure protocol.

use crate::strategy::{Reject, Strategy};
use rand::SeedableRng;

/// RNG driving value generation.
pub type TestRng = rand::SmallRng;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
    /// Cap on discarded draws (filters + `prop_assume!`) per test.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Default configuration with a custom case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// How a single case ended, when not a plain pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case does not apply (does not count towards the target).
    Reject(String),
    /// The property is violated.
    Fail(String),
}

impl TestCaseError {
    /// A failure with this message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }

    /// A discard with this reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

/// Outcome of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives a strategy + property through `config.cases` passing cases.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Runner with a fixed default seed.
    pub fn new(config: ProptestConfig) -> TestRunner {
        TestRunner {
            config,
            rng: TestRng::seed_from_u64(0x5eed_cafe_f00d_d00d),
        }
    }

    /// Runner seeded from `salt` (the macro passes the test path), so
    /// each test explores its own deterministic stream.
    pub fn new_seeded(config: ProptestConfig, salt: &str) -> TestRunner {
        // FNV-1a over the salt.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in salt.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            config,
            rng: TestRng::seed_from_u64(hash),
        }
    }

    /// Run `test` until `cases` draws pass; panics on the first failing
    /// case (no shrinking) or when the reject budget is exhausted.
    pub fn run<S, F>(&mut self, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let mut passed = 0u32;
        let mut rejects = 0u32;
        while passed < self.config.cases {
            let value = match strategy.new_value(&mut self.rng) {
                Ok(value) => value,
                Err(Reject) => {
                    rejects += 1;
                    self.check_reject_budget(rejects, passed);
                    continue;
                }
            };
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    self.check_reject_budget(rejects, passed);
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!("proptest case failed after {passed} passing case(s): {message}");
                }
            }
        }
    }

    fn check_reject_budget(&self, rejects: u32, passed: u32) {
        assert!(
            rejects <= self.config.max_global_rejects,
            "proptest gave up after {rejects} rejected draws ({passed} cases passed); \
             loosen the filters or assumptions"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn runs_the_requested_number_of_cases() {
        use std::cell::Cell;
        let hits = Cell::new(0u32);
        let mut runner = TestRunner::new(ProptestConfig::with_cases(64));
        runner.run(&(0usize..100), |_| {
            hits.set(hits.get() + 1);
            Ok(())
        });
        assert_eq!(hits.get(), 64);
    }

    #[test]
    fn rejects_do_not_count_as_passes() {
        use std::cell::Cell;
        let hits = Cell::new(0u32);
        let mut runner = TestRunner::new(ProptestConfig::with_cases(32));
        let strategy = (0u32..100).prop_filter("keep evens", |v| v % 2 == 0);
        runner.run(&strategy, |v| {
            assert_eq!(v % 2, 0);
            hits.set(hits.get() + 1);
            Ok(())
        });
        assert_eq!(hits.get(), 32);
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic_with_the_message() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(16));
        runner.run(&(0u8..4), |v| {
            if v >= 2 {
                return Err(TestCaseError::fail(format!("{v} too big")));
            }
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "gave up")]
    fn impossible_filters_exhaust_the_budget() {
        let mut runner = TestRunner::new(ProptestConfig {
            cases: 4,
            max_global_rejects: 100,
        });
        let strategy = (0u32..10).prop_filter("never", |_| false);
        runner.run(&strategy, |_| Ok(()));
    }

    #[test]
    fn deterministic_per_salt() {
        let draw = |salt: &str| {
            let mut runner = TestRunner::new_seeded(ProptestConfig::with_cases(1), salt);
            let out = std::cell::Cell::new(0u64);
            runner.run(&(0u64..1_000_000), |v| {
                out.set(v);
                Ok(())
            });
            out.get()
        };
        assert_eq!(draw("a::b"), draw("a::b"));
        assert_ne!(draw("a::b"), draw("c::d"));
    }
}
