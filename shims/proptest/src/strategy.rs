//! The [`Strategy`] trait and its combinators and primitive impls.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Marker returned when a draw is filtered out; the runner redraws.
#[derive(Debug, Clone, Copy)]
pub struct Reject;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value, or [`Reject`] if a filter discarded the draw.
    fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Reject>;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Keep only values satisfying `pred`; `reason` labels the filter.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            pred,
            _reason: reason.into(),
        }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> Result<T, Reject> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, O> Strategy for Map<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> Result<O, Reject> {
        self.base.new_value(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<B, F> {
    base: B,
    pred: F,
    _reason: String,
}

impl<B, F> Strategy for Filter<B, F>
where
    B: Strategy,
    F: Fn(&B::Value) -> bool,
{
    type Value = B::Value;

    fn new_value(&self, rng: &mut TestRng) -> Result<B::Value, Reject> {
        let value = self.base.new_value(rng)?;
        if (self.pred)(&value) {
            Ok(value)
        } else {
            Err(Reject)
        }
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, F, S2> Strategy for FlatMap<B, F>
where
    B: Strategy,
    S2: Strategy,
    F: Fn(B::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> Result<S2::Value, Reject> {
        let inner = self.base.new_value(rng)?;
        (self.f)(inner).new_value(rng)
    }
}

impl<T> Strategy for Range<T>
where
    Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> Result<T, Reject> {
        Ok(rng.random_range(self.clone()))
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> Result<T, Reject> {
        Ok(rng.random_range(self.clone()))
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Reject> {
                Ok(($(self.$idx.new_value(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
