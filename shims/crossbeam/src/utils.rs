//! Small helpers mirrored from `crossbeam-utils`.

use std::thread;

/// Exponential backoff for spin loops.
pub struct Backoff {
    step: u32,
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff::new()
    }
}

impl Backoff {
    const SPIN_LIMIT: u32 = 6;

    /// New backoff in the spinning stage.
    pub fn new() -> Backoff {
        Backoff { step: 0 }
    }

    /// Reset to the spinning stage.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Busy-wait briefly; escalates with each call.
    pub fn spin(&self) {
        for _ in 0..1u32 << self.step.min(Self::SPIN_LIMIT) {
            std::hint::spin_loop();
        }
    }

    /// Back off, yielding the thread once past the spin stage.
    pub fn snooze(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            self.spin();
        } else {
            thread::yield_now();
        }
        self.step = self.step.saturating_add(1);
    }

    /// Whether a waiter should switch to blocking (parking) instead.
    pub fn is_completed(&self) -> bool {
        self.step > Self::SPIN_LIMIT
    }
}
