//! Offline stand-in for `crossbeam` (see `shims/README.md`).
//!
//! Two modules are provided, matching the subset this workspace uses:
//!
//! * [`channel`] — multi-producer multi-consumer channels, unbounded or
//!   bounded with blocking backpressure, with crossbeam's disconnect
//!   semantics (a `recv` on an empty channel whose senders are gone
//!   fails; a `send` fails once all receivers are gone).
//! * [`deque`] — the `Injector`/`Worker`/`Stealer` work-stealing triple.
//!
//! Everything is built on `std::sync` primitives: correctness and API
//! shape over raw throughput, which is ample for the thread counts this
//! workspace runs.

pub mod channel;
pub mod deque;
pub mod utils;
