//! MPMC channels: unbounded or bounded with blocking backpressure.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Queue went non-empty or all senders disconnected.
    readable: Condvar,
    /// Queue went non-full or all receivers disconnected.
    writable: Condvar,
    /// `usize::MAX` for unbounded channels.
    capacity: usize,
}

/// The sending half of a channel. Cloning adds a producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloning adds a consumer.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent message is handed back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`]: the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Nothing queued and every sender is gone.
    Disconnected,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(usize::MAX)
}

/// Create a bounded channel: `send` blocks while `cap` messages queue.
/// A zero capacity is rounded up to one (rendezvous channels are not
/// needed by this workspace).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(cap.max(1))
}

fn with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        readable: Condvar::new(),
        writable: Condvar::new(),
        capacity,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Queue `value`, blocking while the channel is full. Fails only when
    /// every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let shared = &*self.shared;
        let mut state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            if state.queue.len() < shared.capacity {
                state.queue.push_back(value);
                shared.readable.notify_one();
                return Ok(());
            }
            state = shared
                .writable
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Number of queued messages (snapshot).
    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queue
            .len()
    }

    /// Whether the queue is empty (snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Take the next message, blocking while the channel is empty. Fails
    /// once the channel is empty **and** every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let shared = &*self.shared;
        let mut state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(value) = state.queue.pop_front() {
                shared.writable.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = shared
                .readable
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Take the next message if one is queued right now.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let shared = &*self.shared;
        let mut state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        match state.queue.pop_front() {
            Some(value) => {
                shared.writable.notify_one();
                Ok(value)
            }
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of queued messages (snapshot).
    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .queue
            .len()
    }

    /// Whether the queue is empty (snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Iterator over received messages (see [`Receiver::iter`]).
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        state.senders -= 1;
        if state.senders == 0 {
            self.shared.readable.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        state.receivers -= 1;
        if state.receivers == 0 {
            self.shared.writable.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (tx, rx) = bounded::<usize>(2);
        tx.send(0).unwrap();
        tx.send(1).unwrap();
        // Third send must block until a recv frees a slot.
        let producer = thread::spawn(move || {
            tx.send(2).unwrap();
            "sent"
        });
        thread::sleep(Duration::from_millis(50));
        assert!(!producer.is_finished(), "send should be blocked on full");
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(producer.join().unwrap(), "sent");
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn mpmc_delivers_every_message_once() {
        let (tx, rx) = bounded::<usize>(4);
        let mut producers = Vec::new();
        for p in 0..4 {
            let tx = tx.clone();
            producers.push(thread::spawn(move || {
                for i in 0..100 {
                    tx.send(p * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn iterator_drains_until_disconnect() {
        let (tx, rx) = unbounded();
        thread::spawn(move || {
            for i in 0..5 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
