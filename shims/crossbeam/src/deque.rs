//! Work-stealing deque: the `Injector` / `Worker` / `Stealer` triple.
//!
//! Backed by mutex-protected `VecDeque`s rather than lock-free buffers;
//! the API contract (LIFO-ish local pops, FIFO steals, `Steal::Retry`
//! under contention) is preserved for the handful of worker threads this
//! workspace spawns.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// A task was stolen.
    Success(T),
    /// Lost a race; try again.
    Retry,
}

impl<T> Steal<T> {
    /// The stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(task) => Some(task),
            _ => None,
        }
    }

    /// Whether the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// Whether the attempt should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }
}

/// A global FIFO queue every worker can push to and steal from.
pub struct Injector<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Injector<T> {
        Injector::new()
    }
}

impl<T> Injector<T> {
    /// New empty injector.
    pub fn new() -> Injector<T> {
        Injector {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Queue a task at the back.
    pub fn push(&self, task: T) {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(task);
    }

    /// Take a task from the front.
    pub fn steal(&self) -> Steal<T> {
        match self
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
        {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }

    /// Number of queued tasks (snapshot).
    pub fn len(&self) -> usize {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the queue is empty (snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A worker-local queue: its owner pushes and pops at the back, thieves
/// steal from the front via [`Stealer`] handles.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// New FIFO worker queue (`pop` takes the oldest task).
    pub fn new_fifo() -> Worker<T> {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Queue a task.
    pub fn push(&self, task: T) {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(task);
    }

    /// Take the next local task.
    pub fn pop(&self) -> Option<T> {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
    }

    /// A handle other threads can steal through.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }

    /// Number of queued tasks (snapshot).
    pub fn len(&self) -> usize {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the queue is empty (snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Stealing handle onto a [`Worker`]'s queue.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Stealer<T> {
    /// Take a task from the front of the victim's queue.
    pub fn steal(&self) -> Steal<T> {
        match self
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
        {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push(1);
        inj.push(2);
        assert_eq!(inj.steal(), Steal::Success(1));
        assert_eq!(inj.steal(), Steal::Success(2));
        assert_eq!(inj.steal(), Steal::Empty::<i32>);
    }

    #[test]
    fn stealer_drains_worker() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        for i in 0..4 {
            w.push(i);
        }
        assert_eq!(s.steal().success(), Some(0));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(s.steal().success(), Some(2));
        assert_eq!(s.steal().success(), Some(3));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn concurrent_steals_take_each_task_once() {
        let inj = Arc::new(Injector::new());
        for i in 0..1000usize {
            inj.push(i);
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let inj = Arc::clone(&inj);
            handles.push(thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match inj.steal() {
                        Steal::Success(task) => got.push(task),
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                }
                got
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }
}
