//! Offline stand-in for `rand_chacha` (see `shims/README.md`).
//!
//! [`ChaCha8Rng`] runs a genuine 8-round ChaCha keystream (the RFC 7539
//! quarter-round over the standard 16-word state) keyed by a 32-byte
//! seed. Output is deterministic and portable across platforms; the word
//! serialisation order is this shim's own, so streams are not
//! bit-compatible with upstream `rand_chacha`.

use rand::{Rng, SeedableRng};

const CHACHA_ROUNDS: usize = 8;
/// "expand 32-byte k" — the standard ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha keystream generator with 8 double-rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (state rows 1–2).
    key: [u32; 8],
    /// 64-bit block counter (state words 12–13).
    counter: u64,
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "refill".
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14–15 stay zero (the "nonce"); the counter provides the
        // stream position.
        let initial = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// Current block counter (diagnostics).
    pub fn get_word_pos(&self) -> u128 {
        (self.counter as u128) * 16 + self.index as u128
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl Rng for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.index + 2 > 16 {
            self.refill();
        }
        let lo = self.block[self.index] as u64;
        let hi = self.block[self.index + 1] as u64;
        self.index += 2;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn keystream_looks_uniform() {
        // Crude equidistribution check: byte means near 127.5.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut sum = 0u64;
        const N: usize = 100_000;
        for _ in 0..N {
            sum += rng.next_u64() & 0xFF;
        }
        let mean = sum as f64 / N as f64;
        assert!((mean - 127.5).abs() < 1.5, "byte mean {mean}");
    }

    #[test]
    fn sampling_methods_work_through_the_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let x: f64 = rng.random();
        assert!((0.0..1.0).contains(&x));
        let k: usize = rng.random_range(0..10);
        assert!(k < 10);
        let _ = rng.random_bool(0.5);
    }
}
