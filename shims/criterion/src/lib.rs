//! Offline stand-in for `criterion` (see `shims/README.md`).
//!
//! Same bench-authoring surface (`criterion_group!`, `criterion_main!`,
//! `Criterion`, groups, `Bencher::iter`, `Throughput`), but measurement
//! is a plain warmup + timed-batch loop printing one line per benchmark
//! to stdout — no statistics, plots or saved baselines. Honouring
//! `--bench`/`--test` style CLI filtering: the first non-flag argument,
//! if any, is treated as a substring filter on benchmark names.

use std::hint;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration throughput used to derive an elements/sec rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form (the group name provides the prefix).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> BenchmarkId {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<&String> for BenchmarkId {
    fn from(id: &String) -> BenchmarkId {
        BenchmarkId { id: id.clone() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // First free-standing CLI argument filters benchmark names
        // (cargo bench passes harness flags like --bench; skip flags and
        // their obvious values).
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion {
            filter,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Final hook run by `criterion_main!`; nothing to flush here.
    pub fn final_summary(&mut self) {}

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: R,
    ) -> &mut Criterion {
        let id = id.into();
        let sample_size = self.default_sample_size;
        self.run_one(&id.id, sample_size, None, routine);
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one<R: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut routine: R,
    ) {
        if !self.matches(name) {
            return;
        }
        // Calibrate the per-sample iteration count to ~50 ms, capped so
        // cheap routines do not spin forever.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher); // warmup + calibration probe
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let target = Duration::from_millis(50);
        let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        for _ in 0..sample_size.max(1) {
            bencher.iters = iters;
            routine(&mut bencher);
            let per = bencher.elapsed / iters as u32;
            best = best.min(per);
            total += per;
        }
        let mean = total / sample_size.max(1) as u32;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!(", {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) => {
                format!(", {:.0} B/s", n as f64 / mean.as_secs_f64())
            }
            None => String::new(),
        };
        println!(
            "bench {name:<50} mean {mean:>12?}  best {best:>12?}  ({sample_size} samples x {iters} iters{rate})"
        );
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Throughput used to report a rate alongside timings.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: R,
    ) -> &mut Self {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.id);
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion
            .run_one(&name, sample_size, self.throughput, routine);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        self.bench_function(id, |b| routine(b, input))
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Entry point running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}
