//! Command-line interface plumbing for the `gnumap` binary.
//!
//! A deliberately small hand-rolled argument parser (the workspace's
//! offline dependency set has no CLI crate): `--key value` pairs and
//! `--flag` booleans after a subcommand, with typed accessors and
//! did-you-mean-free but precise error messages. Parsing is pure and fully
//! unit-tested; the binary in `src/bin/gnumap.rs` is a thin shell around
//! [`run`].

use crate::core::accum::AccumulatorMode;
use crate::core::snpcall::{Cutoff, SnpCallConfig};
use crate::core::GnumapConfig;
use genome::fasta;
use genome::fastq;
use gnumap_stats::lrt::Ploidy;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// A parsed command line: subcommand plus `--key [value]` options.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    pub command: String,
    options: BTreeMap<String, String>,
    /// Keys that appeared; used to reject unknown options.
    consumed: std::cell::RefCell<std::collections::BTreeSet<String>>,
}

/// Parse `argv[1..]`. Flags (`--x`) get the value `"true"`.
pub fn parse_args(argv: &[String]) -> Result<Args, String> {
    let command = argv
        .first()
        .filter(|c| !c.starts_with("--"))
        .ok_or("expected a subcommand: simulate | call | evaluate | index-stats")?
        .clone();
    let mut options = BTreeMap::new();
    let mut i = 1;
    while i < argv.len() {
        let key = argv[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, found {:?}", argv[i]))?
            .to_string();
        let value = match argv.get(i + 1) {
            Some(v) if !v.starts_with("--") => {
                i += 1;
                v.clone()
            }
            _ => "true".to_string(),
        };
        if options.insert(key.clone(), value).is_some() {
            return Err(format!("option --{key} given twice"));
        }
        i += 1;
    }
    Ok(Args {
        command,
        options,
        consumed: Default::default(),
    })
}

impl Args {
    /// Typed option with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        self.consumed.borrow_mut().insert(key.to_string());
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<String, String> {
        self.consumed.borrow_mut().insert(key.to_string());
        self.options
            .get(key)
            .cloned()
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Optional string option.
    pub fn optional(&self, key: &str) -> Option<String> {
        self.consumed.borrow_mut().insert(key.to_string());
        self.options.get(key).cloned()
    }

    /// Boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.consumed.borrow_mut().insert(key.to_string());
        self.options.get(key).map(String::as_str) == Some("true")
    }

    /// Error on any option that no accessor asked for.
    pub fn reject_unknown(&self) -> Result<(), String> {
        let consumed = self.consumed.borrow();
        for key in self.options.keys() {
            if !consumed.contains(key) {
                return Err(format!("unknown option --{key} for {:?}", self.command));
            }
        }
        Ok(())
    }
}

/// Top-level dispatch; returns the process exit message on error.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), String> {
    let args = parse_args(argv)?;
    match args.command.as_str() {
        "simulate" => cmd_simulate(&args, out),
        "call" => cmd_call(&args, out),
        "map" => cmd_map(&args, out),
        "evaluate" => cmd_evaluate(&args, out),
        "index-stats" => cmd_index_stats(&args, out),
        "verify" => cmd_verify(&args, out),
        "serve" => cmd_serve(&args, out),
        "client" => cmd_client(&args, out),
        other => Err(format!(
            "unknown subcommand {other:?}; expected simulate | call | map | evaluate | \
             index-stats | verify | serve | client"
        )),
    }
}

/// Usage text for `--help` / errors.
pub const USAGE: &str = "\
gnumap — Pair-HMM SNP detection (GNUMAP-SNP reproduction)

USAGE:
  gnumap simulate    --out-dir DIR [--genome-len N] [--snps N] [--coverage X]
                     [--seed S] [--diploid] [--read-len N]
  gnumap call        --reference ref.fa --reads reads.fq [--out calls.vcf]
                     [--ploidy monoploid|diploid] [--alpha A | --fdr Q]
                     [--accumulator norm|chardisc|centdisc]
                     [--driver serial|rayon|stream] [--threads N]
                     [--workers N] [--batch-size N]
                     [--checkpoint-dir DIR] [--resume]
                     [--min-coverage X] [--sample NAME]
  gnumap map         --reference ref.fa --reads reads.fq [--max N]
  gnumap evaluate    --calls calls.vcf --truth truth.tsv
  gnumap index-stats --reference ref.fa [--k N]
  gnumap verify      [--fast]
  gnumap serve       --reference ref.fa [--addr HOST:PORT] [--workers N]
                     [--batch-size N] [--shards N] [--ingress-capacity N]
                     [--submit-timeout-ms MS] [--deadline-ms MS]
                     [--port-file PATH]
  gnumap client      --addr HOST:PORT (--ping | --stats | --shutdown |
                     --reads reads.fq [--ploidy P] [--alpha A | --fdr Q]
                     [--min-coverage X] [--chunk-size N] [--deadline-ms MS]
                     [--out calls.vcf] [--chrom NAME] [--sample NAME])
";

fn read_reference(path: &str) -> Result<(String, genome::DnaSeq), String> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let records = fasta::read_fasta(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
    let record = records
        .into_iter()
        .next()
        .ok_or_else(|| format!("{path}: no FASTA records"))?;
    Ok((record.id, record.seq))
}

fn cmd_simulate(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let out_dir = PathBuf::from(args.require("out-dir")?);
    let genome_len: usize = args.get("genome-len", 100_000usize)?;
    let snps: usize = args.get("snps", 20usize)?;
    let coverage: f64 = args.get("coverage", 12.0f64)?;
    let seed: u64 = args.get("seed", 42u64)?;
    let read_len: usize = args.get("read-len", 62usize)?;
    let diploid = args.flag("diploid");
    args.reject_unknown()?;

    std::fs::create_dir_all(&out_dir).map_err(|e| format!("{out_dir:?}: {e}"))?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let reference = simulate::generate_genome(
        &simulate::GenomeConfig {
            length: genome_len,
            repeat_families: (genome_len / 25_000).max(1),
            ..Default::default()
        },
        &mut rng,
    );
    let catalog = simulate::generate_snp_catalog(
        &reference,
        &simulate::SnpCatalogConfig {
            count: snps,
            ..Default::default()
        },
        &mut rng,
    );
    let read_cfg = ReadSimConfig {
        read_length: read_len,
        coverage,
        ..Default::default()
    };
    let count = read_cfg.read_count(genome_len);
    let reads: Vec<_> = if diploid {
        let individual = simulate::apply_snps_diploid(&reference, &catalog, &mut rng);
        simulate_reads(
            &ReadSource::Diploid(&individual),
            count,
            &read_cfg,
            &mut rng,
        )
    } else {
        let individual = simulate::apply_snps_monoploid(&reference, &catalog);
        simulate_reads(
            &ReadSource::Monoploid(&individual),
            count,
            &read_cfg,
            &mut rng,
        )
    }
    .into_iter()
    .map(|r| r.read)
    .collect();

    let write_file = |name: &str, f: &dyn Fn(&mut BufWriter<File>) -> Result<(), String>| {
        let path = out_dir.join(name);
        let mut w = BufWriter::new(File::create(&path).map_err(|e| format!("{path:?}: {e}"))?);
        f(&mut w)?;
        Ok::<PathBuf, String>(path)
    };
    let fa = write_file("reference.fa", &|w| {
        fasta::write_fasta(
            w,
            &[fasta::FastaRecord {
                id: "chrSim".into(),
                seq: reference.clone(),
            }],
            70,
        )
        .map_err(|e| e.to_string())
    })?;
    let fq = write_file("reads.fq", &|w| {
        fastq::write_fastq(w, &reads).map_err(|e| e.to_string())
    })?;
    let truth = write_file("truth.tsv", &|w| {
        writeln!(w, "#pos\tref\talt\tzygosity").map_err(|e| e.to_string())?;
        for s in &catalog {
            writeln!(
                w,
                "{}\t{}\t{}\t{}",
                s.pos,
                s.reference,
                s.alt,
                match s.zygosity {
                    simulate::Zygosity::Homozygous => "hom",
                    simulate::Zygosity::Heterozygous => "het",
                }
            )
            .map_err(|e| e.to_string())?;
        }
        Ok(())
    })?;
    writeln!(
        out,
        "wrote {} ({} bp), {} ({} reads), {} ({} SNPs)",
        fa.display(),
        genome_len,
        fq.display(),
        reads.len(),
        truth.display(),
        catalog.len()
    )
    .map_err(|e| e.to_string())
}

fn cmd_call(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let reference_path = args.require("reference")?;
    let reads_path = args.require("reads")?;
    let out_path = args.optional("out");
    let sample: String = args.get("sample", "sample".to_string())?;
    let ploidy_s: String = args.get("ploidy", "monoploid".to_string())?;
    let alpha: Option<f64> = args
        .optional("alpha")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| "--alpha: expected a number".to_string())?;
    let fdr: Option<f64> = args
        .optional("fdr")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| "--fdr: expected a number".to_string())?;
    let accumulator_s: String = args.get("accumulator", "norm".to_string())?;
    let threads: usize = args.get("threads", 1usize)?;
    let min_coverage: f64 = args.get("min-coverage", 3.0f64)?;
    // `--threads N` (N > 1) without `--driver` keeps selecting the rayon
    // driver, as it did before `--driver` existed.
    let default_driver = if threads > 1 { "rayon" } else { "serial" };
    let driver: String = args.get("driver", default_driver.to_string())?;
    let workers: usize = args.get("workers", 2usize)?;
    let batch_size: usize = args.get("batch-size", 64usize)?;
    let checkpoint_dir = args.optional("checkpoint-dir");
    let resume = args.flag("resume");
    args.reject_unknown()?;

    if driver != "stream" {
        for (given, flag) in [
            (checkpoint_dir.is_some(), "--checkpoint-dir"),
            (resume, "--resume"),
        ] {
            if given {
                return Err(format!("{flag} only applies to --driver stream"));
            }
        }
    }
    if resume && checkpoint_dir.is_none() {
        return Err("--resume needs --checkpoint-dir".into());
    }

    let ploidy = match ploidy_s.as_str() {
        "monoploid" | "haploid" => Ploidy::Monoploid,
        "diploid" => Ploidy::Diploid,
        other => return Err(format!("--ploidy: unknown value {other:?}")),
    };
    let cutoff = match (alpha, fdr) {
        (Some(_), Some(_)) => return Err("--alpha and --fdr are mutually exclusive".into()),
        (Some(a), None) => Cutoff::PValue(a),
        (None, Some(q)) => Cutoff::Fdr(q),
        (None, None) => Cutoff::PValue(0.05),
    };
    let accumulator = match accumulator_s.as_str() {
        "norm" => AccumulatorMode::Norm,
        "chardisc" => AccumulatorMode::CharDisc,
        "centdisc" => AccumulatorMode::CentDisc,
        other => return Err(format!("--accumulator: unknown value {other:?}")),
    };

    let (chrom, reference) = read_reference(&reference_path)?;

    let config = GnumapConfig {
        calling: SnpCallConfig {
            ploidy,
            cutoff,
            min_total: min_coverage,
        },
        accumulator,
        ..Default::default()
    };
    let load_reads = || -> Result<Vec<genome::SequencedRead>, String> {
        let reads_file = File::open(&reads_path).map_err(|e| format!("{reads_path}: {e}"))?;
        fastq::read_fastq(BufReader::new(reads_file)).map_err(|e| format!("{reads_path}: {e}"))
    };
    let report = match driver.as_str() {
        "serial" => crate::core::run_pipeline(&reference, &load_reads()?, &config),
        // The rayon shared-memory driver (NORM only; the discretized
        // accumulators' merges are order-sensitive).
        "rayon" => match accumulator {
            AccumulatorMode::Norm => crate::core::driver::rayon_driver::run_rayon::<
                crate::core::accum::NormAccumulator,
            >(
                &reference, &load_reads()?, &config, threads.max(2)
            ),
            _ => return Err("--driver rayon requires --accumulator norm".into()),
        },
        // The streaming engine reads the FASTQ incrementally and always
        // accumulates in fixed point (bit-exact under any parallelism and
        // across checkpoint/resume); NORM is the matching selection since
        // fixed point quantizes the same normalized posteriors.
        "stream" => {
            if accumulator != AccumulatorMode::Norm {
                return Err("--driver stream requires --accumulator norm".into());
            }
            let mut stream = exec::FastqStream::open(&reads_path).map_err(|e| e.to_string())?;
            let checkpoint = match &checkpoint_dir {
                Some(dir) => {
                    std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
                    Some(exec::CheckpointPolicy {
                        path: PathBuf::from(dir).join("call.ckpt"),
                        every_batches: 64,
                        resume,
                    })
                }
                None => None,
            };
            let stream_config = exec::StreamConfig {
                workers,
                batch_size,
                checkpoint,
                ..Default::default()
            };
            exec::run_stream::<crate::core::accum::FixedAccumulator>(
                &reference,
                &mut stream,
                &config,
                &stream_config,
            )
            .map_err(|e| e.to_string())?
        }
        other => {
            return Err(format!(
                "--driver: unknown value {other:?}; expected serial | rayon | stream"
            ))
        }
    };

    let records: Vec<_> = report
        .calls
        .iter()
        .map(|c| c.to_vcf_record(&chrom))
        .collect();
    match out_path {
        Some(p) => {
            let w = BufWriter::new(File::create(&p).map_err(|e| format!("{p}: {e}"))?);
            genome::vcf::write_vcf(w, &sample, &records).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "mapped {}/{} reads in {:.2}s; wrote {} calls to {p}",
                report.reads_mapped,
                report.reads_processed,
                report.elapsed_secs,
                records.len()
            )
            .map_err(|e| e.to_string())?;
            if let Some(stats) = &report.stream {
                writeln!(
                    out,
                    "stream: {} workers, {} batches (occupancy {:.2}), \
                     {:.0} reads/cpu-sec, {} checkpoints{}",
                    stats.workers,
                    stats.batches_dispatched,
                    stats.mean_batch_occupancy,
                    crate::core::report::StreamStats::reads_per_cpu_sec(
                        report.reads_processed,
                        &report.rank_cpu_secs,
                    ),
                    stats.checkpoints_written,
                    if stats.resumed_from_checkpoint {
                        " (resumed)"
                    } else {
                        ""
                    },
                )
                .map_err(|e| e.to_string())?;
            }
            Ok(())
        }
        None => genome::vcf::write_vcf(out, &sample, &records).map_err(|e| e.to_string()),
    }
}

fn cmd_map(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let reference_path = args.require("reference")?;
    let reads_path = args.require("reads")?;
    let max: usize = args.get("max", usize::MAX)?;
    args.reject_unknown()?;

    let (_, reference) = read_reference(&reference_path)?;
    let reads_file = File::open(&reads_path).map_err(|e| format!("{reads_path}: {e}"))?;
    let reads =
        fastq::read_fastq(BufReader::new(reads_file)).map_err(|e| format!("{reads_path}: {e}"))?;

    let engine = crate::core::MappingEngine::new(&reference, GnumapConfig::default().mapping);
    writeln!(out, "#read	location	strand	posterior_weight").map_err(|e| e.to_string())?;
    let mut scratch = crate::core::mapping::AlignScratch::new();
    for read in reads.iter().take(max) {
        engine.map_read_with(read, &mut scratch);
        if scratch.is_empty() {
            writeln!(out, "{}	*	*	0", read.id).map_err(|e| e.to_string())?;
            continue;
        }
        for aln in scratch.alignments() {
            writeln!(
                out,
                "{}	{}	{}	{:.6}",
                read.id,
                aln.window_start,
                if aln.reverse { '-' } else { '+' },
                aln.score
            )
            .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// Parse a `truth.tsv` written by `simulate`.
fn read_truth(path: &str) -> Result<Vec<(usize, genome::Base)>, String> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = Vec::new();
    for (lineno, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() < 3 {
            return Err(format!("{path}:{}: expected ≥3 columns", lineno + 1));
        }
        let pos: usize = fields[0]
            .parse()
            .map_err(|_| format!("{path}:{}: bad position", lineno + 1))?;
        let alt = fields[2]
            .bytes()
            .next()
            .and_then(genome::Base::from_ascii)
            .ok_or_else(|| format!("{path}:{}: bad alt allele", lineno + 1))?;
        out.push((pos, alt));
    }
    Ok(out)
}

fn cmd_evaluate(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let calls_path = args.require("calls")?;
    let truth_path = args.require("truth")?;
    args.reject_unknown()?;

    let calls_file = File::open(&calls_path).map_err(|e| format!("{calls_path}: {e}"))?;
    let records = genome::vcf::read_vcf(BufReader::new(calls_file))
        .map_err(|e| format!("{calls_path}: {e}"))?;
    let truth = read_truth(&truth_path)?;

    let truth_map: std::collections::HashMap<usize, genome::Base> = truth.iter().copied().collect();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut hit = std::collections::HashSet::new();
    for r in &records {
        match truth_map.get(&r.pos) {
            Some(alt) if r.alts.contains(alt) => {
                tp += 1;
                hit.insert(r.pos);
            }
            _ => fp += 1,
        }
    }
    let fn_ = truth.iter().filter(|(p, _)| !hit.contains(p)).count();
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let sensitivity = if tp + fn_ == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    writeln!(
        out,
        "TP {tp}  FP {fp}  FN {fn_}  precision {:.1}%  sensitivity {:.1}%",
        100.0 * precision,
        100.0 * sensitivity
    )
    .map_err(|e| e.to_string())
}

fn cmd_index_stats(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let reference_path = args.require("reference")?;
    let k: usize = args.get("k", 10usize)?;
    args.reject_unknown()?;

    let (id, reference) = read_reference(&reference_path)?;
    let index = genome::KmerIndex::build(
        &reference,
        genome::IndexConfig {
            k,
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())?;
    writeln!(
        out,
        "contig {id}: {} bp, k = {k}\n  distinct k-mers : {}\n  stored positions: {}\n  masked repeats  : {}\n  index heap      : {} bytes",
        reference.len(),
        index.distinct_kmers(),
        index.total_positions(),
        index.masked_kmers(),
        index.heap_bytes()
    )
    .map_err(|e| e.to_string())
}

fn cmd_verify(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let fast = args.flag("fast");
    args.reject_unknown()?;
    let report = conformance::run_verify(fast, out).map_err(|e| format!("verify: {e}"))?;
    if report.passed() {
        Ok(())
    } else {
        Err(format!(
            "verification failed: {} failing check(s)",
            report.failure_count()
        ))
    }
}

fn cmd_serve(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let reference_path = args.require("reference")?;
    let addr: String = args.get("addr", "127.0.0.1:0".to_string())?;
    let workers: usize = args.get("workers", 2usize)?;
    let batch_size: usize = args.get("batch-size", 32usize)?;
    let shards: usize = args.get("shards", 16usize)?;
    let ingress_capacity: usize = args.get("ingress-capacity", 64usize)?;
    let submit_timeout_ms: u64 = args.get("submit-timeout-ms", 2_000u64)?;
    let deadline_ms: u64 = args.get("deadline-ms", 30_000u64)?;
    let port_file = args.optional("port-file");
    args.reject_unknown()?;

    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let (_, reference) = read_reference(&reference_path)?;
    let cfg = server::ServerConfig {
        workers,
        batch_size,
        shards,
        ingress_capacity,
        dispatch_capacity: workers * 4,
        submit_timeout: std::time::Duration::from_millis(submit_timeout_ms),
        default_deadline: std::time::Duration::from_millis(deadline_ms),
        ..Default::default()
    };
    let handle = server::start(reference, GnumapConfig::default(), cfg, &addr)
        .map_err(|e| format!("bind {addr}: {e}"))?;
    let bound = handle.addr();
    if let Some(path) = &port_file {
        // Written atomically (rename) so pollers never read a half file.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, format!("{bound}\n")).map_err(|e| format!("{tmp}: {e}"))?;
        std::fs::rename(&tmp, path).map_err(|e| format!("{path}: {e}"))?;
    }
    writeln!(out, "listening on {bound} with {workers} worker(s)").map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;

    // Serve until a Shutdown frame arrives, then report the drain.
    let stats = handle.join();
    writeln!(
        out,
        "drained: {} session(s) served, {} read(s) processed, {} batch(es) \
         (occupancy {:.2}, {:.2} session(s)/batch), {} busy, {} timeout(s)",
        stats.sessions_opened,
        stats.reads_processed,
        stats.batches_dispatched,
        stats.mean_batch_occupancy,
        stats.mean_sessions_per_batch,
        stats.busy_rejections,
        stats.timeouts,
    )
    .map_err(|e| e.to_string())
}

fn cmd_client(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let addr = args.require("addr")?;
    let do_ping = args.flag("ping");
    let do_stats = args.flag("stats");
    let do_shutdown = args.flag("shutdown");
    let reads_path = args.optional("reads");
    let ploidy_s: String = args.get("ploidy", "monoploid".to_string())?;
    let alpha: Option<f64> = args
        .optional("alpha")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| "--alpha: expected a number".to_string())?;
    let fdr: Option<f64> = args
        .optional("fdr")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| "--fdr: expected a number".to_string())?;
    let min_coverage: f64 = args.get("min-coverage", 3.0f64)?;
    let chunk_size: usize = args.get("chunk-size", 256usize)?;
    let deadline_ms: u32 = args.get("deadline-ms", 0u32)?;
    let out_path = args.optional("out");
    let chrom: String = args.get("chrom", "chrSim".to_string())?;
    let sample: String = args.get("sample", "sample".to_string())?;
    args.reject_unknown()?;

    let modes = [do_ping, do_stats, do_shutdown, reads_path.is_some()];
    if modes.iter().filter(|m| **m).count() != 1 {
        return Err("pick exactly one of --ping, --stats, --shutdown, or --reads".into());
    }

    let mut client = server::Client::connect(&*addr).map_err(|e| format!("connect {addr}: {e}"))?;
    if do_ping {
        client.ping(0x676e756d).map_err(|e| e.to_string())?;
        return writeln!(out, "pong from {addr}").map_err(|e| e.to_string());
    }
    if do_stats {
        let s = client.stats().map_err(|e| e.to_string())?;
        return writeln!(
            out,
            "sessions {}/{} open/total ({} aborted)\n\
             reads    {} accepted, {} processed, {} mapped\n\
             batches  {} ({:.2} reads/batch, {:.2} sessions/batch, {} cross-session)\n\
             ingress  {} now, {} peak; {} busy, {} timeout(s)\n\
             latency  p50 {} µs, p99 {} µs\n\
             cpu      {:.3}s total, {:.3}s busiest worker",
            s.sessions_open,
            s.sessions_opened,
            s.sessions_aborted,
            s.reads_accepted,
            s.reads_processed,
            s.reads_mapped,
            s.batches_dispatched,
            s.mean_batch_occupancy,
            s.mean_sessions_per_batch,
            s.cross_session_batches,
            s.ingress_depth,
            s.max_ingress_depth,
            s.busy_rejections,
            s.timeouts,
            s.p50_service_micros,
            s.p99_service_micros,
            s.worker_cpu_secs,
            s.max_worker_cpu_secs,
        )
        .map_err(|e| e.to_string());
    }
    if do_shutdown {
        client.shutdown_server().map_err(|e| e.to_string())?;
        return writeln!(out, "server at {addr} is shutting down").map_err(|e| e.to_string());
    }

    // Session mode: stream a FASTQ through the server and print calls.
    let reads_path = reads_path.expect("mode check guarantees --reads");
    let ploidy = match ploidy_s.as_str() {
        "monoploid" | "haploid" => Ploidy::Monoploid,
        "diploid" => Ploidy::Diploid,
        other => return Err(format!("--ploidy: unknown value {other:?}")),
    };
    let cutoff = match (alpha, fdr) {
        (Some(_), Some(_)) => return Err("--alpha and --fdr are mutually exclusive".into()),
        (Some(a), None) => Cutoff::PValue(a),
        (None, Some(q)) => Cutoff::Fdr(q),
        (None, None) => Cutoff::PValue(0.05),
    };
    let session_config = server::SessionConfig {
        ploidy,
        cutoff,
        min_total: min_coverage,
    };
    let session = client
        .open_session(session_config)
        .map_err(|e| e.to_string())?;

    // Stream the FASTQ incrementally: constant client memory, and chunked
    // submits give the server's batcher cross-request material.
    let mut stream = exec::FastqStream::open(&reads_path).map_err(|e| e.to_string())?;
    let mut submitted = 0u64;
    loop {
        let chunk = exec::ReadStream::next_chunk(&mut stream, chunk_size.max(1))
            .map_err(|e| format!("{reads_path}: {e}"))?;
        if chunk.is_empty() {
            break;
        }
        submitted += u64::from(submit_with_retry(&mut client, session, &chunk)?);
    }
    let result = client
        .finalize(session, deadline_ms)
        .map_err(|e| e.to_string())?;
    let records: Vec<_> = result
        .calls
        .iter()
        .map(|c| c.to_vcf_record(&chrom))
        .collect();
    writeln!(
        out,
        "session {session}: {submitted} read(s) submitted, {} mapped, {} call(s), \
         accumulator digest {:016x}",
        result.reads_mapped,
        result.calls.len(),
        result.digest
    )
    .map_err(|e| e.to_string())?;
    match out_path {
        Some(p) => {
            let w = BufWriter::new(File::create(&p).map_err(|e| format!("{p}: {e}"))?);
            genome::vcf::write_vcf(w, &sample, &records).map_err(|e| e.to_string())?;
            writeln!(out, "wrote {} call(s) to {p}", records.len()).map_err(|e| e.to_string())
        }
        None => genome::vcf::write_vcf(out, &sample, &records).map_err(|e| e.to_string()),
    }
}

/// Submit one chunk, backing off briefly on typed `Busy` rejections.
fn submit_with_retry(
    client: &mut server::Client,
    session: u64,
    chunk: &[genome::SequencedRead],
) -> Result<u32, String> {
    loop {
        match client.submit_reads(session, chunk) {
            Ok(n) => return Ok(n),
            Err(err) if err.is_kind(server::ErrorKind::Busy) => {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            Err(err) => return Err(err.to_string()),
        }
    }
}

/// Helper for integration tests: run with string args against a buffer.
pub fn run_to_string(argv: &[&str]) -> Result<String, String> {
    let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    let mut buf = Vec::new();
    run(&argv, &mut buf)?;
    String::from_utf8(buf).map_err(|e| e.to_string())
}

/// Exists so `Path` is referenced without a feature-gated import dance.
#[allow(dead_code)]
fn _path_marker(_: &Path) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_subcommand_options_and_flags() {
        let args = parse_args(&argv(&[
            "call",
            "--reference",
            "ref.fa",
            "--threads",
            "4",
            "--diploid",
        ]))
        .unwrap();
        assert_eq!(args.command, "call");
        assert_eq!(args.require("reference").unwrap(), "ref.fa");
        assert_eq!(args.get::<usize>("threads", 1).unwrap(), 4);
        assert!(args.flag("diploid"));
        assert!(!args.flag("nonexistent"));
        assert_eq!(args.get::<u64>("seed", 7).unwrap(), 7);
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        assert!(parse_args(&argv(&[])).is_err());
        assert!(parse_args(&argv(&["--reference", "x"])).is_err());
    }

    #[test]
    fn duplicate_option_rejected() {
        assert!(parse_args(&argv(&["call", "--k", "1", "--k", "2"])).is_err());
    }

    #[test]
    fn unknown_option_rejected_after_accessors() {
        let args = parse_args(&argv(&["index-stats", "--reference", "r", "--bogus", "1"])).unwrap();
        let _ = args.require("reference");
        let _ = args.get::<usize>("k", 10);
        assert!(args.reject_unknown().is_err());
    }

    #[test]
    fn bad_typed_value_reports_key() {
        let args = parse_args(&argv(&["call", "--threads", "lots"])).unwrap();
        let err = args.get::<usize>("threads", 1).unwrap_err();
        assert!(err.contains("--threads"));
    }

    #[test]
    fn verify_rejects_unknown_options_before_running() {
        let mut buf = Vec::new();
        let err = run(&argv(&["verify", "--bogus"]), &mut buf).unwrap_err();
        assert!(err.contains("--bogus"));
        assert!(buf.is_empty(), "no tier should have started");
    }

    #[test]
    fn unknown_subcommand_is_reported() {
        let mut buf = Vec::new();
        let err = run(&argv(&["frobnicate"]), &mut buf).unwrap_err();
        assert!(err.contains("frobnicate"));
    }

    #[test]
    fn end_to_end_simulate_call_evaluate() {
        let dir = std::env::temp_dir().join(format!("gnumap-cli-{}", std::process::id()));
        let dirs = dir.to_str().unwrap().to_string();
        std::fs::create_dir_all(&dir).unwrap();

        let msg = run_to_string(&[
            "simulate",
            "--out-dir",
            &dirs,
            "--genome-len",
            "8000",
            "--snps",
            "6",
            "--coverage",
            "14",
            "--seed",
            "5",
        ])
        .unwrap();
        assert!(msg.contains("reference.fa"));

        let fa = format!("{dirs}/reference.fa");
        let fq = format!("{dirs}/reads.fq");
        let vcf = format!("{dirs}/calls.vcf");
        let msg =
            run_to_string(&["call", "--reference", &fa, "--reads", &fq, "--out", &vcf]).unwrap();
        assert!(msg.contains("calls"), "{msg}");

        let truth = format!("{dirs}/truth.tsv");
        let eval = run_to_string(&["evaluate", "--calls", &vcf, "--truth", &truth]).unwrap();
        assert!(eval.starts_with("TP "), "{eval}");
        // At 14x on a clean 8 kb genome the caller should be near-perfect.
        let tp: usize = eval.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(tp >= 5, "evaluation: {eval}");

        let stats = run_to_string(&["index-stats", "--reference", &fa]).unwrap();
        assert!(stats.contains("distinct k-mers"));

        // Alternative calling paths: FDR cutoff and CHARDISC accumulator.
        let vcf2 = format!("{dirs}/calls_fdr.vcf");
        run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--out",
            &vcf2,
            "--fdr",
            "0.05",
            "--accumulator",
            "chardisc",
        ])
        .unwrap();
        let eval2 = run_to_string(&["evaluate", "--calls", &vcf2, "--truth", &truth]).unwrap();
        assert!(eval2.starts_with("TP "), "{eval2}");

        // The map subcommand lists per-read posterior locations.
        let tsv =
            run_to_string(&["map", "--reference", &fa, "--reads", &fq, "--max", "25"]).unwrap();
        let data_lines: Vec<&str> = tsv.lines().filter(|l| !l.starts_with('#')).collect();
        assert!(data_lines.len() >= 25, "{} lines", data_lines.len());
        for line in &data_lines {
            let cols: Vec<&str> = line.split('\t').collect();
            assert_eq!(cols.len(), 4, "line {line:?}");
        }

        // Multi-threaded calling agrees with serial on the same input.
        let vcf3 = format!("{dirs}/calls_mt.vcf");
        run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--out",
            &vcf3,
            "--threads",
            "3",
        ])
        .unwrap();
        let a = std::fs::read_to_string(&vcf).unwrap();
        let b = std::fs::read_to_string(&vcf3).unwrap();
        let strip = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(|l| l.split('\t').take(5).collect::<Vec<_>>().join("\t"))
                .collect()
        };
        assert_eq!(strip(&a), strip(&b), "threads must not change the calls");

        // Mutually exclusive cutoffs are rejected.
        let err = run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--alpha",
            "0.05",
            "--fdr",
            "0.05",
        ])
        .unwrap_err();
        assert!(err.contains("mutually exclusive"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_and_client_end_to_end() {
        let dir = std::env::temp_dir().join(format!("gnumap-cli-serve-{}", std::process::id()));
        let dirs = dir.to_str().unwrap().to_string();
        std::fs::create_dir_all(&dir).unwrap();
        run_to_string(&[
            "simulate",
            "--out-dir",
            &dirs,
            "--genome-len",
            "6000",
            "--snps",
            "5",
            "--coverage",
            "10",
            "--seed",
            "31",
        ])
        .unwrap();
        let fa = format!("{dirs}/reference.fa");
        let fq = format!("{dirs}/reads.fq");
        let port_file = format!("{dirs}/port");

        // The server blocks until a Shutdown frame, so it runs on a thread.
        let fa2 = fa.clone();
        let pf2 = port_file.clone();
        let server_thread = std::thread::spawn(move || {
            run_to_string(&[
                "serve",
                "--reference",
                &fa2,
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--port-file",
                &pf2,
            ])
        });

        // Wait for the port file to appear.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                let s = s.trim().to_string();
                if !s.is_empty() {
                    break s;
                }
            }
            assert!(std::time::Instant::now() < deadline, "server never bound");
            std::thread::sleep(std::time::Duration::from_millis(20));
        };

        let pong = run_to_string(&["client", "--addr", &addr, "--ping"]).unwrap();
        assert!(pong.contains("pong"), "{pong}");

        let vcf = format!("{dirs}/served.vcf");
        let msg = run_to_string(&[
            "client",
            "--addr",
            &addr,
            "--reads",
            &fq,
            "--out",
            &vcf,
            "--chunk-size",
            "32",
        ])
        .unwrap();
        assert!(msg.contains("accumulator digest"), "{msg}");

        // The served calls match a local serial run over the same input.
        let vcf_local = format!("{dirs}/local.vcf");
        run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--out",
            &vcf_local,
            "--driver",
            "stream",
            "--workers",
            "1",
        ])
        .unwrap();
        let strip = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(|l| l.split('\t').take(5).collect::<Vec<_>>().join("\t"))
                .collect()
        };
        let served = std::fs::read_to_string(&vcf).unwrap();
        let local = std::fs::read_to_string(&vcf_local).unwrap();
        assert_eq!(strip(&served), strip(&local), "served calls diverged");

        let stats = run_to_string(&["client", "--addr", &addr, "--stats"]).unwrap();
        assert!(stats.contains("reads"), "{stats}");

        // Exactly one mode must be chosen.
        let err = run_to_string(&["client", "--addr", &addr, "--ping", "--stats"]).unwrap_err();
        assert!(err.contains("exactly one"), "{err}");

        let bye = run_to_string(&["client", "--addr", &addr, "--shutdown"]).unwrap();
        assert!(bye.contains("shutting down"), "{bye}");
        let serve_out = server_thread.join().unwrap().unwrap();
        assert!(serve_out.contains("listening on"), "{serve_out}");
        assert!(serve_out.contains("drained:"), "{serve_out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_driver_end_to_end() {
        let dir = std::env::temp_dir().join(format!("gnumap-cli-stream-{}", std::process::id()));
        let dirs = dir.to_str().unwrap().to_string();
        std::fs::create_dir_all(&dir).unwrap();
        run_to_string(&[
            "simulate",
            "--out-dir",
            &dirs,
            "--genome-len",
            "8000",
            "--snps",
            "6",
            "--coverage",
            "14",
            "--seed",
            "5",
        ])
        .unwrap();
        let fa = format!("{dirs}/reference.fa");
        let fq = format!("{dirs}/reads.fq");

        let vcf_serial = format!("{dirs}/serial.vcf");
        run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--out",
            &vcf_serial,
        ])
        .unwrap();

        let vcf_stream = format!("{dirs}/stream.vcf");
        let ckpt = format!("{dirs}/ckpt");
        let msg = run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--out",
            &vcf_stream,
            "--driver",
            "stream",
            "--workers",
            "2",
            "--batch-size",
            "32",
            "--checkpoint-dir",
            &ckpt,
        ])
        .unwrap();
        assert!(msg.contains("stream: 2 workers"), "{msg}");

        // The streaming driver must call the same sites and alleles the
        // serial pipeline does (fixed-point vs float scoring may move the
        // statistics, not the calls, on this clean input).
        let strip = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(|l| l.split('\t').take(5).collect::<Vec<_>>().join("\t"))
                .collect()
        };
        let a = std::fs::read_to_string(&vcf_serial).unwrap();
        let b = std::fs::read_to_string(&vcf_stream).unwrap();
        assert_eq!(strip(&a), strip(&b), "stream driver changed the calls");

        // Flag validation.
        let err = run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--driver",
            "stream",
            "--accumulator",
            "chardisc",
        ])
        .unwrap_err();
        assert!(err.contains("--accumulator norm"), "{err}");
        let err = run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--checkpoint-dir",
            &ckpt,
        ])
        .unwrap_err();
        assert!(err.contains("--driver stream"), "{err}");
        let err = run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--driver",
            "stream",
            "--resume",
        ])
        .unwrap_err();
        assert!(err.contains("--checkpoint-dir"), "{err}");
        let err = run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--driver",
            "warp",
        ])
        .unwrap_err();
        assert!(err.contains("unknown value"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }
}
