//! # gnumap-snp
//!
//! A from-scratch Rust reproduction of **"Parallel Pair-HMM SNP
//! Detection"** (Clement et al., IPDPS Workshops 2012) — the GNUMAP-SNP
//! system: probabilistic short-read mapping with a quality-extended Pair
//! Hidden Markov Model, marginal (all-alignments) base evidence
//! accumulation, likelihood-ratio-test SNP calling with p-value/FDR
//! cutoffs, two MPI-style parallel decompositions, and the paper's three
//! accumulator memory layouts.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`genome`] — sequences, FASTA/FASTQ, k-mer index;
//! * [`pairhmm`] — the forward/backward Pair-HMM core;
//! * [`stats`] — χ², LRT, FDR;
//! * [`simulate`] — genome/SNP/read simulators;
//! * [`mpisim`] — the thread-backed message-passing runtime;
//! * [`core`] — the assembled pipeline, accumulators and drivers;
//! * [`engine`] — the driver registry and the one run contract every
//!   execution mode implements;
//! * [`baseline`] — the MAQ-style comparison caller.
//!
//! ## Quickstart
//!
//! ```
//! use gnumap_snp::prelude::*;
//! use rand::SeedableRng;
//!
//! // Simulate a tiny genome with one planted SNP and some reads.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let reference = simulate::generate_genome(
//!     &simulate::GenomeConfig { length: 4000, repeat_families: 0,
//!         ..Default::default() },
//!     &mut rng,
//! );
//! let snps = simulate::generate_snp_catalog(
//!     &reference,
//!     &simulate::SnpCatalogConfig { count: 3, ..Default::default() },
//!     &mut rng,
//! );
//! let individual = simulate::apply_snps_monoploid(&reference, &snps);
//! let sim_cfg = simulate::ReadSimConfig { coverage: 14.0, ..Default::default() };
//! let reads: Vec<_> = simulate::reads::simulate_reads(
//!     &simulate::reads::ReadSource::Monoploid(&individual),
//!     sim_cfg.read_count(reference.len()), &sim_cfg, &mut rng,
//! ).into_iter().map(|r| r.read).collect();
//!
//! // Run the pipeline and check the planted SNPs are recovered.
//! let report = run_pipeline(&reference, &reads, &GnumapConfig::default());
//! let truth: Vec<_> = snps.iter().map(|s| (s.pos, s.alt)).collect();
//! let accuracy = score_snp_calls(&report.calls, &truth);
//! assert!(accuracy.true_positives >= 2);
//! ```

pub mod cli;

pub use baseline;
pub use conformance;
pub use engine;
pub use exec;
pub use genome;
pub use gnumap_core as core;
pub use gnumap_stats as stats;
pub use mpisim;
pub use pairhmm;
pub use server;
pub use simulate;

/// Commonly used items in one import.
pub mod prelude {
    pub use baseline::{run_baseline, BaselineConfig};
    pub use genome::{Base, DnaSeq, SequencedRead};
    pub use gnumap_core::accum::{AccumulatorMode, GenomeAccumulator};
    pub use gnumap_core::driver::genome_split::run_genome_split;
    pub use gnumap_core::driver::rayon_driver::run_rayon;
    pub use gnumap_core::driver::read_split::run_read_split;
    pub use gnumap_core::{
        call_snps, run_pipeline, score_snp_calls, GnumapConfig, MappingEngine, RunReport, SnpCall,
    };
    pub use gnumap_stats::lrt::Ploidy;
    pub use simulate;
}

pub use gnumap_core::report::score_snp_calls;
pub use gnumap_core::{run_pipeline, GnumapConfig};
