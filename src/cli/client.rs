//! `gnumap client` — blocking wire client for the loopback server.

use super::{parse_cutoff, parse_float_opt, parse_ploidy, Args};
use std::fs::File;
use std::io::{BufWriter, Write};

pub(super) fn cmd_client(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let addr = args.require("addr")?;
    let do_ping = args.flag("ping");
    let do_stats = args.flag("stats");
    let do_shutdown = args.flag("shutdown");
    let reads_path = args.optional("reads");
    let ploidy_s: String = args.get("ploidy", "monoploid".to_string())?;
    let alpha = parse_float_opt(args, "alpha")?;
    let fdr = parse_float_opt(args, "fdr")?;
    let min_coverage: f64 = args.get("min-coverage", 3.0f64)?;
    let chunk_size: usize = args.get("chunk-size", 256usize)?;
    let deadline_ms: u32 = args.get("deadline-ms", 0u32)?;
    let out_path = args.optional("out");
    let chrom: String = args.get("chrom", "chrSim".to_string())?;
    let sample: String = args.get("sample", "sample".to_string())?;
    args.reject_unknown()?;

    let modes = [do_ping, do_stats, do_shutdown, reads_path.is_some()];
    if modes.iter().filter(|m| **m).count() != 1 {
        return Err("pick exactly one of --ping, --stats, --shutdown, or --reads".into());
    }

    let mut client = server::Client::connect(&*addr).map_err(|e| format!("connect {addr}: {e}"))?;
    if do_ping {
        client.ping(0x676e756d).map_err(|e| e.to_string())?;
        return writeln!(out, "pong from {addr}").map_err(|e| e.to_string());
    }
    if do_stats {
        let s = client.stats().map_err(|e| e.to_string())?;
        return writeln!(
            out,
            "sessions {}/{} open/total ({} aborted)\n\
             reads    {} accepted, {} processed, {} mapped\n\
             pairhmm  {} candidate(s) evaluated, {} deposit column(s)\n\
             batches  {} ({:.2} reads/batch, {:.2} sessions/batch, {} cross-session)\n\
             ingress  {} now, {} peak; {} busy, {} timeout(s)\n\
             latency  p50 {} µs, p99 {} µs\n\
             cpu      {:.3}s total, {:.3}s busiest worker",
            s.sessions_open,
            s.sessions_opened,
            s.sessions_aborted,
            s.reads_accepted,
            s.reads_processed,
            s.reads_mapped,
            s.candidates_evaluated,
            s.deposit_columns,
            s.batches_dispatched,
            s.mean_batch_occupancy,
            s.mean_sessions_per_batch,
            s.cross_session_batches,
            s.ingress_depth,
            s.max_ingress_depth,
            s.busy_rejections,
            s.timeouts,
            s.p50_service_micros,
            s.p99_service_micros,
            s.worker_cpu_secs,
            s.max_worker_cpu_secs,
        )
        .map_err(|e| e.to_string());
    }
    if do_shutdown {
        client.shutdown_server().map_err(|e| e.to_string())?;
        return writeln!(out, "server at {addr} is shutting down").map_err(|e| e.to_string());
    }

    // Session mode: stream a FASTQ through the server and print calls.
    let reads_path = reads_path.expect("mode check guarantees --reads");
    let ploidy = parse_ploidy(&ploidy_s)?;
    let cutoff = parse_cutoff(alpha, fdr)?;
    let session_config = server::SessionConfig {
        ploidy,
        cutoff,
        min_total: min_coverage,
    };
    let session = client
        .open_session(session_config)
        .map_err(|e| e.to_string())?;

    // Stream the FASTQ incrementally: constant client memory, and chunked
    // submits give the server's batcher cross-request material.
    let mut stream = exec::FastqStream::open(&reads_path).map_err(|e| e.to_string())?;
    let mut submitted = 0u64;
    loop {
        let chunk = exec::ReadStream::next_chunk(&mut stream, chunk_size.max(1))
            .map_err(|e| format!("{reads_path}: {e}"))?;
        if chunk.is_empty() {
            break;
        }
        submitted += u64::from(submit_with_retry(&mut client, session, &chunk)?);
    }
    let result = client
        .finalize(session, deadline_ms)
        .map_err(|e| e.to_string())?;
    let records: Vec<_> = result
        .calls
        .iter()
        .map(|c| c.to_vcf_record(&chrom))
        .collect();
    writeln!(
        out,
        "session {session}: {submitted} read(s) submitted, {} mapped, {} call(s), \
         accumulator digest {:016x}",
        result.reads_mapped,
        result.calls.len(),
        result.digest
    )
    .map_err(|e| e.to_string())?;
    match out_path {
        Some(p) => {
            let w = BufWriter::new(File::create(&p).map_err(|e| format!("{p}: {e}"))?);
            genome::vcf::write_vcf(w, &sample, &records).map_err(|e| e.to_string())?;
            writeln!(out, "wrote {} call(s) to {p}", records.len()).map_err(|e| e.to_string())
        }
        None => genome::vcf::write_vcf(out, &sample, &records).map_err(|e| e.to_string()),
    }
}

fn submit_with_retry(
    client: &mut server::Client,
    session: u64,
    chunk: &[genome::SequencedRead],
) -> Result<u32, String> {
    loop {
        match client.submit_reads(session, chunk) {
            Ok(n) => return Ok(n),
            Err(err) if err.is_kind(server::ErrorKind::Busy) => {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            Err(err) => return Err(err.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::cli::run_to_string;

    #[test]
    fn serve_and_client_end_to_end() {
        let dir = std::env::temp_dir().join(format!("gnumap-cli-serve-{}", std::process::id()));
        let dirs = dir.to_str().unwrap().to_string();
        std::fs::create_dir_all(&dir).unwrap();
        run_to_string(&[
            "simulate",
            "--out-dir",
            &dirs,
            "--genome-len",
            "6000",
            "--snps",
            "5",
            "--coverage",
            "10",
            "--seed",
            "31",
        ])
        .unwrap();
        let fa = format!("{dirs}/reference.fa");
        let fq = format!("{dirs}/reads.fq");
        let port_file = format!("{dirs}/port");

        // The server blocks until a Shutdown frame, so it runs on a thread.
        let fa2 = fa.clone();
        let pf2 = port_file.clone();
        let server_thread = std::thread::spawn(move || {
            run_to_string(&[
                "serve",
                "--reference",
                &fa2,
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--port-file",
                &pf2,
            ])
        });

        // Wait for the port file to appear.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                let s = s.trim().to_string();
                if !s.is_empty() {
                    break s;
                }
            }
            assert!(std::time::Instant::now() < deadline, "server never bound");
            std::thread::sleep(std::time::Duration::from_millis(20));
        };

        let pong = run_to_string(&["client", "--addr", &addr, "--ping"]).unwrap();
        assert!(pong.contains("pong"), "{pong}");

        let vcf = format!("{dirs}/served.vcf");
        let msg = run_to_string(&[
            "client",
            "--addr",
            &addr,
            "--reads",
            &fq,
            "--out",
            &vcf,
            "--chunk-size",
            "32",
        ])
        .unwrap();
        assert!(msg.contains("accumulator digest"), "{msg}");

        // The served calls match a local serial run over the same input.
        let vcf_local = format!("{dirs}/local.vcf");
        run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--out",
            &vcf_local,
            "--driver",
            "stream",
            "--workers",
            "1",
        ])
        .unwrap();
        let strip = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(|l| l.split('\t').take(5).collect::<Vec<_>>().join("\t"))
                .collect()
        };
        let served = std::fs::read_to_string(&vcf).unwrap();
        let local = std::fs::read_to_string(&vcf_local).unwrap();
        assert_eq!(strip(&served), strip(&local), "served calls diverged");

        let stats = run_to_string(&["client", "--addr", &addr, "--stats"]).unwrap();
        assert!(stats.contains("reads"), "{stats}");
        assert!(stats.contains("candidate(s) evaluated"), "{stats}");

        // Exactly one mode must be chosen.
        let err = run_to_string(&["client", "--addr", &addr, "--ping", "--stats"]).unwrap_err();
        assert!(err.contains("exactly one"), "{err}");

        let bye = run_to_string(&["client", "--addr", &addr, "--shutdown"]).unwrap();
        assert!(bye.contains("shutting down"), "{bye}");
        let serve_out = server_thread.join().unwrap().unwrap();
        assert!(serve_out.contains("listening on"), "{serve_out}");
        assert!(serve_out.contains("drained:"), "{serve_out}");

        std::fs::remove_dir_all(&dir).ok();
    }
}
