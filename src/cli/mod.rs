//! Command-line interface plumbing for the `gnumap` binary.
//!
//! A deliberately small hand-rolled argument parser (the workspace's
//! offline dependency set has no CLI crate): `--key value` pairs and
//! `--flag` booleans after a subcommand, with typed accessors and
//! precise error messages. Parsing is pure and fully unit-tested; the
//! binary in `src/bin/gnumap.rs` is a thin shell around [`run`].
//!
//! One module per subcommand family:
//!
//! * [`simulate`] — synthetic genome/reads/truth generation;
//! * [`pipeline`] — `call` (driver-registry dispatch), `map`, `evaluate`,
//!   `index-stats`, `drivers`;
//! * [`serve`] — the batching TCP daemon;
//! * [`client`] — the blocking wire client;
//! * [`verify`] — the conformance harness and `trace-check`.
//!
//! Every execution mode of `call` resolves through
//! [`engine::DriverRegistry`]; this file holds only the parser, shared
//! option helpers, and the dispatch table.

mod client;
mod pipeline;
mod serve;
mod simulate;
mod verify;

use crate::core::accum::AccumulatorMode;
use crate::core::snpcall::Cutoff;
use genome::fasta;
use gnumap_stats::lrt::Ploidy;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufReader, Write};

/// A parsed command line: subcommand plus `--key [value]` options.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    pub command: String,
    options: BTreeMap<String, String>,
    /// Keys that appeared; used to reject unknown options.
    consumed: std::cell::RefCell<std::collections::BTreeSet<String>>,
}

/// Parse `argv[1..]`. Flags (`--x`) get the value `"true"`.
pub fn parse_args(argv: &[String]) -> Result<Args, String> {
    let command = argv
        .first()
        .filter(|c| !c.starts_with("--"))
        .ok_or("expected a subcommand: simulate | call | evaluate | index-stats")?
        .clone();
    let mut options = BTreeMap::new();
    let mut i = 1;
    while i < argv.len() {
        let key = argv[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, found {:?}", argv[i]))?
            .to_string();
        let value = match argv.get(i + 1) {
            Some(v) if !v.starts_with("--") => {
                i += 1;
                v.clone()
            }
            _ => "true".to_string(),
        };
        if options.insert(key.clone(), value).is_some() {
            return Err(format!("option --{key} given twice"));
        }
        i += 1;
    }
    Ok(Args {
        command,
        options,
        consumed: Default::default(),
    })
}

impl Args {
    /// Typed option with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        self.consumed.borrow_mut().insert(key.to_string());
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<String, String> {
        self.consumed.borrow_mut().insert(key.to_string());
        self.options
            .get(key)
            .cloned()
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Optional string option.
    pub fn optional(&self, key: &str) -> Option<String> {
        self.consumed.borrow_mut().insert(key.to_string());
        self.options.get(key).cloned()
    }

    /// Boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.consumed.borrow_mut().insert(key.to_string());
        self.options.get(key).map(String::as_str) == Some("true")
    }

    /// Error on any option that no accessor asked for.
    pub fn reject_unknown(&self) -> Result<(), String> {
        let consumed = self.consumed.borrow();
        for key in self.options.keys() {
            if !consumed.contains(key) {
                return Err(format!("unknown option --{key} for {:?}", self.command));
            }
        }
        Ok(())
    }
}

/// Top-level dispatch; returns the process exit message on error.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), String> {
    let args = parse_args(argv)?;
    match args.command.as_str() {
        "simulate" => simulate::cmd_simulate(&args, out),
        "call" => pipeline::cmd_call(&args, out),
        "map" => pipeline::cmd_map(&args, out),
        "evaluate" => pipeline::cmd_evaluate(&args, out),
        "index-stats" => pipeline::cmd_index_stats(&args, out),
        "drivers" => pipeline::cmd_drivers(&args, out),
        "verify" => verify::cmd_verify(&args, out),
        "trace-check" => verify::cmd_trace_check(&args, out),
        "serve" => serve::cmd_serve(&args, out),
        "client" => client::cmd_client(&args, out),
        other => Err(format!(
            "unknown subcommand {other:?}; expected simulate | call | map | evaluate | \
             index-stats | drivers | verify | trace-check | serve | client"
        )),
    }
}

/// Usage text for `--help` / errors.
pub const USAGE: &str = "\
gnumap — Pair-HMM SNP detection (GNUMAP-SNP reproduction)

USAGE:
  gnumap simulate    --out-dir DIR [--genome-len N] [--snps N] [--coverage X]
                     [--seed S] [--diploid] [--read-len N]
  gnumap call        --reference ref.fa --reads reads.fq [--out calls.vcf]
                     [--ploidy monoploid|diploid] [--alpha A | --fdr Q]
                     [--accumulator norm|chardisc|centdisc|fixed]
                     [--driver NAME] [--threads N] [--workers N]
                     [--batch-size N] [--shards N]
                     [--checkpoint-dir DIR] [--resume]
                     [--trace-json PATH]
                     [--min-coverage X] [--sample NAME]
                     (run `gnumap drivers` for the driver table)
  gnumap map         --reference ref.fa --reads reads.fq [--max N]
  gnumap evaluate    --calls calls.vcf --truth truth.tsv
  gnumap index-stats --reference ref.fa [--k N]
  gnumap drivers
  gnumap verify      [--fast]
  gnumap trace-check --trace trace.jsonl
  gnumap serve       --reference ref.fa [--addr HOST:PORT] [--workers N]
                     [--batch-size N] [--shards N] [--ingress-capacity N]
                     [--submit-timeout-ms MS] [--deadline-ms MS]
                     [--port-file PATH]
  gnumap client      --addr HOST:PORT (--ping | --stats | --shutdown |
                     --reads reads.fq [--ploidy P] [--alpha A | --fdr Q]
                     [--min-coverage X] [--chunk-size N] [--deadline-ms MS]
                     [--out calls.vcf] [--chrom NAME] [--sample NAME])
";

/// Load the first FASTA record of a reference file.
pub(crate) fn read_reference(path: &str) -> Result<(String, genome::DnaSeq), String> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let records = fasta::read_fasta(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
    let record = records
        .into_iter()
        .next()
        .ok_or_else(|| format!("{path}: no FASTA records"))?;
    Ok((record.id, record.seq))
}

/// Parse a `--ploidy` value.
pub(crate) fn parse_ploidy(value: &str) -> Result<Ploidy, String> {
    match value {
        "monoploid" | "haploid" => Ok(Ploidy::Monoploid),
        "diploid" => Ok(Ploidy::Diploid),
        other => Err(format!("--ploidy: unknown value {other:?}")),
    }
}

/// Combine `--alpha` / `--fdr` into a cutoff (mutually exclusive;
/// defaults to `p < 0.05`).
pub(crate) fn parse_cutoff(alpha: Option<f64>, fdr: Option<f64>) -> Result<Cutoff, String> {
    match (alpha, fdr) {
        (Some(_), Some(_)) => Err("--alpha and --fdr are mutually exclusive".into()),
        (Some(a), None) => Ok(Cutoff::PValue(a)),
        (None, Some(q)) => Ok(Cutoff::Fdr(q)),
        (None, None) => Ok(Cutoff::PValue(0.05)),
    }
}

/// Parse an `--accumulator` value.
pub(crate) fn parse_accumulator(value: &str) -> Result<AccumulatorMode, String> {
    match value {
        "norm" => Ok(AccumulatorMode::Norm),
        "chardisc" => Ok(AccumulatorMode::CharDisc),
        "centdisc" => Ok(AccumulatorMode::CentDisc),
        "fixed" => Ok(AccumulatorMode::Fixed),
        other => Err(format!("--accumulator: unknown value {other:?}")),
    }
}

/// Parse an optional float option (`--alpha`, `--fdr`) with a typed error.
pub(crate) fn parse_float_opt(args: &Args, key: &str) -> Result<Option<f64>, String> {
    args.optional(key)
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| format!("--{key}: expected a number"))
}

/// Helper for integration tests: run with string args against a buffer.
pub fn run_to_string(argv: &[&str]) -> Result<String, String> {
    let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    let mut buf = Vec::new();
    run(&argv, &mut buf)?;
    String::from_utf8(buf).map_err(|e| e.to_string())
}

#[cfg(test)]
pub(crate) fn test_argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        test_argv(parts)
    }

    #[test]
    fn parses_subcommand_options_and_flags() {
        let args = parse_args(&argv(&[
            "call",
            "--reference",
            "ref.fa",
            "--threads",
            "4",
            "--diploid",
        ]))
        .unwrap();
        assert_eq!(args.command, "call");
        assert_eq!(args.require("reference").unwrap(), "ref.fa");
        assert_eq!(args.get::<usize>("threads", 1).unwrap(), 4);
        assert!(args.flag("diploid"));
        assert!(!args.flag("nonexistent"));
        assert_eq!(args.get::<u64>("seed", 7).unwrap(), 7);
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        assert!(parse_args(&argv(&[])).is_err());
        assert!(parse_args(&argv(&["--reference", "x"])).is_err());
    }

    #[test]
    fn duplicate_option_rejected() {
        assert!(parse_args(&argv(&["call", "--k", "1", "--k", "2"])).is_err());
    }

    #[test]
    fn unknown_option_rejected_after_accessors() {
        let args = parse_args(&argv(&["index-stats", "--reference", "r", "--bogus", "1"])).unwrap();
        let _ = args.require("reference");
        let _ = args.get::<usize>("k", 10);
        assert!(args.reject_unknown().is_err());
    }

    #[test]
    fn bad_typed_value_reports_key() {
        let args = parse_args(&argv(&["call", "--threads", "lots"])).unwrap();
        let err = args.get::<usize>("threads", 1).unwrap_err();
        assert!(err.contains("--threads"));
    }

    #[test]
    fn unknown_subcommand_is_reported() {
        let mut buf = Vec::new();
        let err = run(&argv(&["frobnicate"]), &mut buf).unwrap_err();
        assert!(err.contains("frobnicate"));
    }

    #[test]
    fn shared_option_parsers() {
        assert_eq!(parse_ploidy("haploid").unwrap(), Ploidy::Monoploid);
        assert!(parse_ploidy("triploid").is_err());
        assert!(matches!(
            parse_cutoff(None, None).unwrap(),
            Cutoff::PValue(_)
        ));
        assert!(parse_cutoff(Some(0.05), Some(0.05)).is_err());
        assert_eq!(parse_accumulator("fixed").unwrap(), AccumulatorMode::Fixed);
        assert!(parse_accumulator("sparse")
            .unwrap_err()
            .contains("unknown value"));
    }
}
