//! `gnumap simulate` — synthetic genome, reads, and truth set.

use super::Args;
use genome::{fasta, fastq};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;

pub(super) fn cmd_simulate(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let out_dir = PathBuf::from(args.require("out-dir")?);
    let genome_len: usize = args.get("genome-len", 100_000usize)?;
    let snps: usize = args.get("snps", 20usize)?;
    let coverage: f64 = args.get("coverage", 12.0f64)?;
    let seed: u64 = args.get("seed", 42u64)?;
    let read_len: usize = args.get("read-len", 62usize)?;
    let diploid = args.flag("diploid");
    args.reject_unknown()?;

    std::fs::create_dir_all(&out_dir).map_err(|e| format!("{out_dir:?}: {e}"))?;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let reference = simulate::generate_genome(
        &simulate::GenomeConfig {
            length: genome_len,
            repeat_families: (genome_len / 25_000).max(1),
            ..Default::default()
        },
        &mut rng,
    );
    let catalog = simulate::generate_snp_catalog(
        &reference,
        &simulate::SnpCatalogConfig {
            count: snps,
            ..Default::default()
        },
        &mut rng,
    );
    let read_cfg = ReadSimConfig {
        read_length: read_len,
        coverage,
        ..Default::default()
    };
    let count = read_cfg.read_count(genome_len);
    let reads: Vec<_> = if diploid {
        let individual = simulate::apply_snps_diploid(&reference, &catalog, &mut rng);
        simulate_reads(
            &ReadSource::Diploid(&individual),
            count,
            &read_cfg,
            &mut rng,
        )
    } else {
        let individual = simulate::apply_snps_monoploid(&reference, &catalog);
        simulate_reads(
            &ReadSource::Monoploid(&individual),
            count,
            &read_cfg,
            &mut rng,
        )
    }
    .into_iter()
    .map(|r| r.read)
    .collect();

    let write_file = |name: &str, f: &dyn Fn(&mut BufWriter<File>) -> Result<(), String>| {
        let path = out_dir.join(name);
        let mut w = BufWriter::new(File::create(&path).map_err(|e| format!("{path:?}: {e}"))?);
        f(&mut w)?;
        Ok::<PathBuf, String>(path)
    };
    let fa = write_file("reference.fa", &|w| {
        fasta::write_fasta(
            w,
            &[fasta::FastaRecord {
                id: "chrSim".into(),
                seq: reference.clone(),
            }],
            70,
        )
        .map_err(|e| e.to_string())
    })?;
    let fq = write_file("reads.fq", &|w| {
        fastq::write_fastq(w, &reads).map_err(|e| e.to_string())
    })?;
    let truth = write_file("truth.tsv", &|w| {
        writeln!(w, "#pos\tref\talt\tzygosity").map_err(|e| e.to_string())?;
        for s in &catalog {
            writeln!(
                w,
                "{}\t{}\t{}\t{}",
                s.pos,
                s.reference,
                s.alt,
                match s.zygosity {
                    simulate::Zygosity::Homozygous => "hom",
                    simulate::Zygosity::Heterozygous => "het",
                }
            )
            .map_err(|e| e.to_string())?;
        }
        Ok(())
    })?;
    writeln!(
        out,
        "wrote {} ({} bp), {} ({} reads), {} ({} SNPs)",
        fa.display(),
        genome_len,
        fq.display(),
        reads.len(),
        truth.display(),
        catalog.len()
    )
    .map_err(|e| e.to_string())
}
