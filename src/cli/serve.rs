//! `gnumap serve` — the batching loopback SNP-calling daemon.

use super::{read_reference, Args};
use crate::core::GnumapConfig;
use std::io::Write;

pub(super) fn cmd_serve(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let reference_path = args.require("reference")?;
    let addr: String = args.get("addr", "127.0.0.1:0".to_string())?;
    let workers: usize = args.get("workers", 2usize)?;
    let batch_size: usize = args.get("batch-size", 32usize)?;
    let shards: usize = args.get("shards", 16usize)?;
    let ingress_capacity: usize = args.get("ingress-capacity", 64usize)?;
    let submit_timeout_ms: u64 = args.get("submit-timeout-ms", 2_000u64)?;
    let deadline_ms: u64 = args.get("deadline-ms", 30_000u64)?;
    let port_file = args.optional("port-file");
    args.reject_unknown()?;

    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let (_, reference) = read_reference(&reference_path)?;
    let cfg = server::ServerConfig {
        workers,
        batch_size,
        shards,
        ingress_capacity,
        dispatch_capacity: workers * 4,
        submit_timeout: std::time::Duration::from_millis(submit_timeout_ms),
        default_deadline: std::time::Duration::from_millis(deadline_ms),
        ..Default::default()
    };
    let handle = server::start(reference, GnumapConfig::default(), cfg, &addr)
        .map_err(|e| format!("bind {addr}: {e}"))?;
    let bound = handle.addr();
    if let Some(path) = &port_file {
        // Written atomically (rename) so pollers never read a half file.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, format!("{bound}\n")).map_err(|e| format!("{tmp}: {e}"))?;
        std::fs::rename(&tmp, path).map_err(|e| format!("{path}: {e}"))?;
    }
    writeln!(out, "listening on {bound} with {workers} worker(s)").map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;

    // Serve until a Shutdown frame arrives, then report the drain.
    let stats = handle.join();
    writeln!(
        out,
        "drained: {} session(s) served, {} read(s) processed, {} batch(es) \
         (occupancy {:.2}, {:.2} session(s)/batch), {} busy, {} timeout(s)",
        stats.sessions_opened,
        stats.reads_processed,
        stats.batches_dispatched,
        stats.mean_batch_occupancy,
        stats.mean_sessions_per_batch,
        stats.busy_rejections,
        stats.timeouts,
    )
    .map_err(|e| e.to_string())
}
