//! `gnumap verify` (conformance harness) and `gnumap trace-check`
//! (validate a `--trace-json` event log).

use crate::core::observe::Event;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};

use super::Args;

pub(super) fn cmd_verify(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let fast = args.flag("fast");
    args.reject_unknown()?;
    let report = conformance::run_verify(fast, out).map_err(|e| format!("verify: {e}"))?;
    if report.passed() {
        Ok(())
    } else {
        Err(format!(
            "verification failed: {} failing check(s)",
            report.failure_count()
        ))
    }
}

/// Parse a JSON-lines trace written via `--trace-json`, validate every
/// line, and summarise event kinds. Errors on an empty trace or one
/// without the run_start/run_end bracket.
pub(super) fn cmd_trace_check(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let trace_path = args.require("trace")?;
    args.reject_unknown()?;

    let file = std::fs::File::open(&trace_path).map_err(|e| format!("{trace_path}: {e}"))?;
    let mut kinds: BTreeMap<String, usize> = BTreeMap::new();
    let mut total = 0usize;
    for (lineno, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("{trace_path}: {e}"))?;
        if line.is_empty() {
            continue;
        }
        let event = Event::parse_json_line(&line)
            .map_err(|e| format!("{trace_path}:{}: {e}", lineno + 1))?;
        *kinds.entry(event.kind().to_string()).or_insert(0) += 1;
        total += 1;
    }
    if total == 0 {
        return Err(format!("{trace_path}: empty trace"));
    }
    for bracket in ["run_start", "run_end"] {
        if !kinds.contains_key(bracket) {
            return Err(format!("{trace_path}: no {bracket} event"));
        }
    }
    let summary = kinds
        .iter()
        .map(|(k, n)| format!("{k} {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    writeln!(out, "{total} event(s): {summary}").map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::super::{run, test_argv};
    use crate::cli::run_to_string;

    #[test]
    fn verify_rejects_unknown_options_before_running() {
        let mut buf = Vec::new();
        let err = run(&test_argv(&["verify", "--bogus"]), &mut buf).unwrap_err();
        assert!(err.contains("--bogus"));
        assert!(buf.is_empty(), "no tier should have started");
    }

    #[test]
    fn trace_check_rejects_garbage_and_empty_traces() {
        let dir = std::env::temp_dir().join(format!("gnumap-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "").unwrap();
        let err = run_to_string(&["trace-check", "--trace", empty.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("empty trace"), "{err}");

        let garbage = dir.join("garbage.jsonl");
        std::fs::write(&garbage, "not json\n").unwrap();
        let err =
            run_to_string(&["trace-check", "--trace", garbage.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("garbage.jsonl:1"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }
}
