//! `gnumap call` / `map` / `evaluate` / `index-stats` / `drivers` —
//! the local pipeline commands.
//!
//! `call` resolves its execution mode exclusively through
//! [`engine::DriverRegistry`]: every registered driver (serial, rayon,
//! the MPI decompositions, the streaming engine, the loopback server) is
//! selectable with `--driver`, unknown names get a typo suggestion, and
//! `--trace-json` attaches a JSON-lines observer to any of them.

use super::{parse_accumulator, parse_cutoff, parse_float_opt, parse_ploidy, read_reference, Args};
use crate::core::observe::{JsonLinesSink, Observer};
use crate::core::snpcall::SnpCallConfig;
use crate::core::GnumapConfig;
use engine::{DriverRegistry, NullSink, ReadSource, RunContext};
use genome::fastq;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::sync::Arc;

pub(super) fn cmd_call(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let reference_path = args.require("reference")?;
    let reads_path = args.require("reads")?;
    let out_path = args.optional("out");
    let sample: String = args.get("sample", "sample".to_string())?;
    let ploidy_s: String = args.get("ploidy", "monoploid".to_string())?;
    let alpha = parse_float_opt(args, "alpha")?;
    let fdr = parse_float_opt(args, "fdr")?;
    let accumulator_s: String = args.get("accumulator", "norm".to_string())?;
    let threads: usize = args.get("threads", 1usize)?;
    let min_coverage: f64 = args.get("min-coverage", 3.0f64)?;
    // `--threads N` (N > 1) without `--driver` keeps selecting the rayon
    // driver, as it did before `--driver` existed.
    let default_driver = if threads > 1 { "rayon" } else { "serial" };
    let driver_s: String = args.get("driver", default_driver.to_string())?;
    let workers: usize = args.get("workers", 2usize)?;
    let batch_size: usize = args.get("batch-size", 64usize)?;
    let shards: usize = args.get("shards", 16usize)?;
    let checkpoint_dir = args.optional("checkpoint-dir");
    let resume = args.flag("resume");
    let trace_json = args.optional("trace-json");
    args.reject_unknown()?;

    let registry = DriverRegistry::standard();
    let driver = registry
        .get(&driver_s)
        .map_err(|e| format!("--driver: {e}"))?;
    let caps = driver.capabilities();

    if !caps.checkpointing {
        for (given, flag) in [
            (checkpoint_dir.is_some(), "--checkpoint-dir"),
            (resume, "--resume"),
        ] {
            if given {
                return Err(format!("{flag} only applies to --driver stream"));
            }
        }
    }
    if resume && checkpoint_dir.is_none() {
        return Err("--resume needs --checkpoint-dir".into());
    }

    let ploidy = parse_ploidy(&ploidy_s)?;
    let cutoff = parse_cutoff(alpha, fdr)?;
    let accumulator = parse_accumulator(&accumulator_s)?;
    if !caps.supports(accumulator) {
        let supported: Vec<String> = caps
            .accumulators
            .iter()
            .map(|m| m.name().to_lowercase())
            .collect();
        return Err(format!(
            "--driver {} requires --accumulator {}",
            driver.name(),
            supported.join(" | ")
        ));
    }

    let (chrom, reference) = read_reference(&reference_path)?;

    let mut ctx = RunContext::new(&reference);
    ctx.config = GnumapConfig {
        calling: SnpCallConfig {
            ploidy,
            cutoff,
            min_total: min_coverage,
        },
        accumulator,
        ..Default::default()
    };
    // Streaming drivers size their worker pool with --workers; everything
    // else interprets the budget as threads/ranks via --threads.
    ctx.threads = if caps.streaming { workers } else { threads };
    ctx.batch_size = batch_size;
    ctx.shards = shards;
    ctx.checkpoint = match &checkpoint_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
            Some(exec::CheckpointPolicy {
                path: PathBuf::from(dir).join("call.ckpt"),
                every_batches: 64,
                resume,
            })
        }
        None => None,
    };
    let trace_sink = match &trace_json {
        Some(path) => {
            let file = File::create(path).map_err(|e| format!("{path}: {e}"))?;
            Some(Arc::new(JsonLinesSink::new(BufWriter::new(file))))
        }
        None => None,
    };
    if let Some(sink) = &trace_sink {
        ctx.observer = Observer::new(sink.clone());
    }

    let mut call_sink = NullSink;
    let report = if caps.streaming {
        // Streaming drivers read the FASTQ incrementally: constant memory.
        let mut stream = exec::FastqStream::open(&reads_path).map_err(|e| e.to_string())?;
        driver.run(&ctx, ReadSource::Stream(&mut stream), &mut call_sink)
    } else {
        let reads_file = File::open(&reads_path).map_err(|e| format!("{reads_path}: {e}"))?;
        let reads = fastq::read_fastq(BufReader::new(reads_file))
            .map_err(|e| format!("{reads_path}: {e}"))?;
        driver.run(&ctx, ReadSource::Slice(&reads), &mut call_sink)
    }
    .map_err(|e| e.to_string())?;
    if let Some(sink) = &trace_sink {
        sink.flush().map_err(|e| format!("--trace-json: {e}"))?;
    }

    let records: Vec<_> = report
        .calls
        .iter()
        .map(|c| c.to_vcf_record(&chrom))
        .collect();
    match out_path {
        Some(p) => {
            let w = BufWriter::new(File::create(&p).map_err(|e| format!("{p}: {e}"))?);
            genome::vcf::write_vcf(w, &sample, &records).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "mapped {}/{} reads in {:.2}s; wrote {} calls to {p}",
                report.reads_mapped,
                report.reads_processed,
                report.elapsed_secs,
                records.len()
            )
            .map_err(|e| e.to_string())?;
            if let Some(stats) = &report.stream {
                writeln!(
                    out,
                    "stream: {} workers, {} batches (occupancy {:.2}), \
                     {:.0} reads/cpu-sec, {} checkpoints{}",
                    stats.workers,
                    stats.batches_dispatched,
                    stats.mean_batch_occupancy,
                    crate::core::report::StreamStats::reads_per_cpu_sec(
                        report.reads_processed,
                        &report.rank_cpu_secs,
                    ),
                    stats.checkpoints_written,
                    if stats.resumed_from_checkpoint {
                        " (resumed)"
                    } else {
                        ""
                    },
                )
                .map_err(|e| e.to_string())?;
            }
            Ok(())
        }
        None => genome::vcf::write_vcf(out, &sample, &records).map_err(|e| e.to_string()),
    }
}

/// `gnumap drivers` — the registry's capability table.
pub(super) fn cmd_drivers(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    args.reject_unknown()?;
    write!(out, "{}", DriverRegistry::standard().driver_table()).map_err(|e| e.to_string())
}

pub(super) fn cmd_map(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let reference_path = args.require("reference")?;
    let reads_path = args.require("reads")?;
    let max: usize = args.get("max", usize::MAX)?;
    args.reject_unknown()?;

    let (_, reference) = read_reference(&reference_path)?;
    let reads_file = File::open(&reads_path).map_err(|e| format!("{reads_path}: {e}"))?;
    let reads =
        fastq::read_fastq(BufReader::new(reads_file)).map_err(|e| format!("{reads_path}: {e}"))?;

    let engine = crate::core::MappingEngine::new(&reference, GnumapConfig::default().mapping);
    writeln!(out, "#read	location	strand	posterior_weight").map_err(|e| e.to_string())?;
    let mut scratch = crate::core::mapping::AlignScratch::new();
    for read in reads.iter().take(max) {
        engine.map_read_with(read, &mut scratch);
        if scratch.is_empty() {
            writeln!(out, "{}	*	*	0", read.id).map_err(|e| e.to_string())?;
            continue;
        }
        for aln in scratch.alignments() {
            writeln!(
                out,
                "{}	{}	{}	{:.6}",
                read.id,
                aln.window_start,
                if aln.reverse { '-' } else { '+' },
                aln.score
            )
            .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// Parse a `truth.tsv` written by `simulate`.
fn read_truth(path: &str) -> Result<Vec<(usize, genome::Base)>, String> {
    use std::io::BufRead;
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = Vec::new();
    for (lineno, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() < 3 {
            return Err(format!("{path}:{}: expected ≥3 columns", lineno + 1));
        }
        let pos: usize = fields[0]
            .parse()
            .map_err(|_| format!("{path}:{}: bad position", lineno + 1))?;
        let alt = fields[2]
            .bytes()
            .next()
            .and_then(genome::Base::from_ascii)
            .ok_or_else(|| format!("{path}:{}: bad alt allele", lineno + 1))?;
        out.push((pos, alt));
    }
    Ok(out)
}

pub(super) fn cmd_evaluate(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let calls_path = args.require("calls")?;
    let truth_path = args.require("truth")?;
    args.reject_unknown()?;

    let calls_file = File::open(&calls_path).map_err(|e| format!("{calls_path}: {e}"))?;
    let records = genome::vcf::read_vcf(BufReader::new(calls_file))
        .map_err(|e| format!("{calls_path}: {e}"))?;
    let truth = read_truth(&truth_path)?;

    let truth_map: std::collections::HashMap<usize, genome::Base> = truth.iter().copied().collect();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut hit = std::collections::HashSet::new();
    for r in &records {
        match truth_map.get(&r.pos) {
            Some(alt) if r.alts.contains(alt) => {
                tp += 1;
                hit.insert(r.pos);
            }
            _ => fp += 1,
        }
    }
    let fn_ = truth.iter().filter(|(p, _)| !hit.contains(p)).count();
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let sensitivity = if tp + fn_ == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    writeln!(
        out,
        "TP {tp}  FP {fp}  FN {fn_}  precision {:.1}%  sensitivity {:.1}%",
        100.0 * precision,
        100.0 * sensitivity
    )
    .map_err(|e| e.to_string())
}

pub(super) fn cmd_index_stats(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let reference_path = args.require("reference")?;
    let k: usize = args.get("k", 10usize)?;
    args.reject_unknown()?;

    let (id, reference) = read_reference(&reference_path)?;
    let index = genome::KmerIndex::build(
        &reference,
        genome::IndexConfig {
            k,
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())?;
    writeln!(
        out,
        "contig {id}: {} bp, k = {k}\n  distinct k-mers : {}\n  stored positions: {}\n  masked repeats  : {}\n  index heap      : {} bytes",
        reference.len(),
        index.distinct_kmers(),
        index.total_positions(),
        index.masked_kmers(),
        index.heap_bytes()
    )
    .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use crate::cli::run_to_string;

    #[test]
    fn end_to_end_simulate_call_evaluate() {
        let dir = std::env::temp_dir().join(format!("gnumap-cli-{}", std::process::id()));
        let dirs = dir.to_str().unwrap().to_string();
        std::fs::create_dir_all(&dir).unwrap();

        let msg = run_to_string(&[
            "simulate",
            "--out-dir",
            &dirs,
            "--genome-len",
            "8000",
            "--snps",
            "6",
            "--coverage",
            "14",
            "--seed",
            "5",
        ])
        .unwrap();
        assert!(msg.contains("reference.fa"));

        let fa = format!("{dirs}/reference.fa");
        let fq = format!("{dirs}/reads.fq");
        let vcf = format!("{dirs}/calls.vcf");
        let msg =
            run_to_string(&["call", "--reference", &fa, "--reads", &fq, "--out", &vcf]).unwrap();
        assert!(msg.contains("calls"), "{msg}");

        let truth = format!("{dirs}/truth.tsv");
        let eval = run_to_string(&["evaluate", "--calls", &vcf, "--truth", &truth]).unwrap();
        assert!(eval.starts_with("TP "), "{eval}");
        // At 14x on a clean 8 kb genome the caller should be near-perfect.
        let tp: usize = eval.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(tp >= 5, "evaluation: {eval}");

        let stats = run_to_string(&["index-stats", "--reference", &fa]).unwrap();
        assert!(stats.contains("distinct k-mers"));

        // Alternative calling paths: FDR cutoff and CHARDISC accumulator.
        let vcf2 = format!("{dirs}/calls_fdr.vcf");
        run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--out",
            &vcf2,
            "--fdr",
            "0.05",
            "--accumulator",
            "chardisc",
        ])
        .unwrap();
        let eval2 = run_to_string(&["evaluate", "--calls", &vcf2, "--truth", &truth]).unwrap();
        assert!(eval2.starts_with("TP "), "{eval2}");

        // The map subcommand lists per-read posterior locations.
        let tsv =
            run_to_string(&["map", "--reference", &fa, "--reads", &fq, "--max", "25"]).unwrap();
        let data_lines: Vec<&str> = tsv.lines().filter(|l| !l.starts_with('#')).collect();
        assert!(data_lines.len() >= 25, "{} lines", data_lines.len());
        for line in &data_lines {
            let cols: Vec<&str> = line.split('\t').collect();
            assert_eq!(cols.len(), 4, "line {line:?}");
        }

        // Multi-threaded calling agrees with serial on the same input.
        let vcf3 = format!("{dirs}/calls_mt.vcf");
        run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--out",
            &vcf3,
            "--threads",
            "3",
        ])
        .unwrap();
        let a = std::fs::read_to_string(&vcf).unwrap();
        let b = std::fs::read_to_string(&vcf3).unwrap();
        let strip = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(|l| l.split('\t').take(5).collect::<Vec<_>>().join("\t"))
                .collect()
        };
        assert_eq!(strip(&a), strip(&b), "threads must not change the calls");

        // Mutually exclusive cutoffs are rejected.
        let err = run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--alpha",
            "0.05",
            "--fdr",
            "0.05",
        ])
        .unwrap_err();
        assert!(err.contains("mutually exclusive"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_driver_end_to_end() {
        let dir = std::env::temp_dir().join(format!("gnumap-cli-stream-{}", std::process::id()));
        let dirs = dir.to_str().unwrap().to_string();
        std::fs::create_dir_all(&dir).unwrap();
        run_to_string(&[
            "simulate",
            "--out-dir",
            &dirs,
            "--genome-len",
            "8000",
            "--snps",
            "6",
            "--coverage",
            "14",
            "--seed",
            "5",
        ])
        .unwrap();
        let fa = format!("{dirs}/reference.fa");
        let fq = format!("{dirs}/reads.fq");

        let vcf_serial = format!("{dirs}/serial.vcf");
        run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--out",
            &vcf_serial,
        ])
        .unwrap();

        let vcf_stream = format!("{dirs}/stream.vcf");
        let ckpt = format!("{dirs}/ckpt");
        let msg = run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--out",
            &vcf_stream,
            "--driver",
            "stream",
            "--workers",
            "2",
            "--batch-size",
            "32",
            "--checkpoint-dir",
            &ckpt,
        ])
        .unwrap();
        assert!(msg.contains("stream: 2 workers"), "{msg}");

        // The streaming driver must call the same sites and alleles the
        // serial pipeline does (fixed-point vs float scoring may move the
        // statistics, not the calls, on this clean input).
        let strip = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(|l| l.split('\t').take(5).collect::<Vec<_>>().join("\t"))
                .collect()
        };
        let a = std::fs::read_to_string(&vcf_serial).unwrap();
        let b = std::fs::read_to_string(&vcf_stream).unwrap();
        assert_eq!(strip(&a), strip(&b), "stream driver changed the calls");

        // Flag validation.
        let err = run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--driver",
            "stream",
            "--accumulator",
            "chardisc",
        ])
        .unwrap_err();
        assert!(err.contains("--accumulator norm"), "{err}");
        let err = run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--checkpoint-dir",
            &ckpt,
        ])
        .unwrap_err();
        assert!(err.contains("--driver stream"), "{err}");
        let err = run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--driver",
            "stream",
            "--resume",
        ])
        .unwrap_err();
        assert!(err.contains("--checkpoint-dir"), "{err}");
        let err = run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--driver",
            "warp",
        ])
        .unwrap_err();
        assert!(err.contains("unknown value"), "{err}");
        // Typos get a did-you-mean from the registry.
        let err = run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--driver",
            "sream",
        ])
        .unwrap_err();
        assert!(err.contains("did you mean \"stream\"?"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn registry_drivers_and_trace_json_end_to_end() {
        let dir = std::env::temp_dir().join(format!("gnumap-cli-reg-{}", std::process::id()));
        let dirs = dir.to_str().unwrap().to_string();
        std::fs::create_dir_all(&dir).unwrap();
        run_to_string(&[
            "simulate",
            "--out-dir",
            &dirs,
            "--genome-len",
            "6000",
            "--snps",
            "5",
            "--coverage",
            "10",
            "--seed",
            "11",
        ])
        .unwrap();
        let fa = format!("{dirs}/reference.fa");
        let fq = format!("{dirs}/reads.fq");

        // The drivers table comes straight from the registry.
        let table = run_to_string(&["drivers"]).unwrap();
        for name in [
            "serial",
            "rayon",
            "read-split",
            "read-split-ring",
            "genome-split",
            "stream",
            "server",
        ] {
            assert!(table.contains(&format!("`{name}`")), "{table}");
        }

        // Every MPI decomposition is now reachable from the CLI, and all
        // fixed-point drivers produce identical calls.
        let vcf_fixed = format!("{dirs}/fixed.vcf");
        run_to_string(&[
            "call",
            "--reference",
            &fa,
            "--reads",
            &fq,
            "--out",
            &vcf_fixed,
            "--accumulator",
            "fixed",
        ])
        .unwrap();
        let strip = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .collect::<Vec<_>>()
                .iter()
                .map(|l| l.to_string())
                .collect()
        };
        let want = strip(&std::fs::read_to_string(&vcf_fixed).unwrap());
        for driver in ["read-split", "genome-split"] {
            let vcf = format!("{dirs}/{driver}.vcf");
            let trace = format!("{dirs}/{driver}.trace.jsonl");
            run_to_string(&[
                "call",
                "--reference",
                &fa,
                "--reads",
                &fq,
                "--out",
                &vcf,
                "--driver",
                driver,
                "--threads",
                "3",
                "--accumulator",
                "fixed",
                "--trace-json",
                &trace,
            ])
            .unwrap();
            let got = strip(&std::fs::read_to_string(&vcf).unwrap());
            assert_eq!(got, want, "{driver} calls diverged from serial fixed");
            // And the trace validates.
            let report = run_to_string(&["trace-check", "--trace", &trace]).unwrap();
            assert!(report.contains("run_start 1"), "{report}");
            assert!(report.contains("run_end 1"), "{report}");
        }

        std::fs::remove_dir_all(&dir).ok();
    }
}
