//! The `gnumap` command-line tool: simulate workloads, call SNPs to VCF,
//! evaluate against a truth set, and inspect index statistics.
//!
//! All logic lives in [`gnumap_snp::cli`]; this shell only handles process
//! boundaries (argv, stdout, exit codes).

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" || argv[0] == "help" {
        print!("{}", gnumap_snp::cli::USAGE);
        std::process::exit(if argv.is_empty() { 2 } else { 0 });
    }
    let mut stdout = std::io::stdout().lock();
    if let Err(message) = gnumap_snp::cli::run(&argv, &mut stdout) {
        eprintln!("gnumap: {message}");
        eprintln!();
        eprint!("{}", gnumap_snp::cli::USAGE);
        std::process::exit(2);
    }
}
