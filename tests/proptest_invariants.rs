//! Cross-crate property tests on the accumulators and the calling layer.

use gnumap_snp::core::accum::{
    CentDiscAccumulator, CharDiscAccumulator, GenomeAccumulator, NormAccumulator,
};
use proptest::prelude::*;

/// Strategy: a short list of (position, delta-vector) updates.
fn updates(len: usize) -> impl Strategy<Value = Vec<(usize, [f64; 5])>> {
    proptest::collection::vec(
        (
            0..len,
            proptest::array::uniform5(0.0f64..1.0)
                .prop_filter("non-degenerate delta", |d| d.iter().sum::<f64>() > 1e-6),
        ),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn norm_totals_track_deposited_mass(ups in updates(16)) {
        let mut acc = NormAccumulator::new(16);
        let mut expected = [0.0f64; 16];
        for (pos, d) in &ups {
            acc.add(*pos, d);
            expected[*pos] += d.iter().sum::<f64>();
        }
        for (pos, &exp) in expected.iter().enumerate() {
            prop_assert!((acc.total(pos) - exp).abs() < 1e-4);
        }
    }

    #[test]
    fn norm_merge_is_order_independent(
        a in updates(12),
        b in updates(12),
    ) {
        let pour = |ups: &[(usize, [f64; 5])]| {
            let mut acc = NormAccumulator::new(12);
            for (pos, d) in ups {
                acc.add(*pos, d);
            }
            acc
        };
        let mut ab = pour(&a);
        ab.merge_from(&pour(&b));
        let mut ba = pour(&b);
        ba.merge_from(&pour(&a));
        for pos in 0..12 {
            let ca = ab.counts(pos);
            let cb = ba.counts(pos);
            for k in 0..5 {
                prop_assert!((ca[k] - cb[k]).abs() < 1e-4,
                    "merge asymmetry at {pos}/{k}: {ca:?} vs {cb:?}");
            }
        }
    }

    #[test]
    fn chardisc_preserves_total_and_normalisation(ups in updates(10)) {
        let mut acc = CharDiscAccumulator::new(10);
        let mut expected = [0.0f64; 10];
        for (pos, d) in &ups {
            acc.add(*pos, d);
            expected[*pos] += d.iter().sum::<f64>();
        }
        for (pos, &exp) in expected.iter().enumerate() {
            // Totals are carried in full f32 precision...
            prop_assert!((acc.total(pos) - exp).abs() < 1e-3);
            // ...and decoded counts re-sum to the total (bytes sum to 255).
            let c = acc.counts(pos);
            let sum: f64 = c.iter().sum();
            if exp > 0.0 {
                prop_assert!((sum - acc.total(pos)).abs() < 1e-6 * acc.total(pos).max(1.0));
            }
        }
    }

    #[test]
    fn chardisc_dominant_symbol_survives_quantisation(
        pos in 0usize..8,
        dominant in 0usize..5,
        n in 1usize..50,
    ) {
        let mut acc = CharDiscAccumulator::new(8);
        let mut d = [0.02; 5];
        d[dominant] = 0.92;
        for _ in 0..n {
            acc.add(pos, &d);
        }
        let c = acc.counts(pos);
        let argmax = (0..5).max_by(|&a, &b| c[a].total_cmp(&c[b])).unwrap();
        prop_assert_eq!(argmax, dominant, "counts {:?}", c);
    }

    #[test]
    fn centdisc_totals_exact_and_counts_bounded(ups in updates(10)) {
        let mut acc = CentDiscAccumulator::new(10);
        let mut expected = [0.0f64; 10];
        for (pos, d) in &ups {
            acc.add(*pos, d);
            expected[*pos] += d.iter().sum::<f64>();
        }
        for (pos, &exp) in expected.iter().enumerate() {
            prop_assert!((acc.total(pos) - exp).abs() < 1e-3);
            let c = acc.counts(pos);
            let sum: f64 = c.iter().sum();
            // Decoded counts are a centroid × total: non-negative, re-sum
            // to the total.
            prop_assert!(c.iter().all(|&x| x >= 0.0));
            if exp > 0.0 {
                prop_assert!((sum - acc.total(pos)).abs() < 1e-6 * acc.total(pos).max(1.0));
            }
        }
    }

    #[test]
    fn wire_round_trip_is_lossless_for_all_modes(ups in updates(8)) {
        fn check<A: GenomeAccumulator>(ups: &[(usize, [f64; 5])]) -> Result<(), TestCaseError> {
            let mut acc = A::new(8);
            for (pos, d) in ups {
                acc.add(*pos, d);
            }
            // Merging a wire into a zero accumulator must reproduce the
            // decoded counts exactly (no double quantisation drift beyond
            // one re-encode).
            let mut fresh = A::new(8);
            fresh.merge_wire(&acc.to_wire());
            for pos in 0..8 {
                let a = acc.counts(pos);
                let b = fresh.counts(pos);
                for k in 0..5 {
                    prop_assert!((a[k] - b[k]).abs() < 1e-2 * a[k].max(1.0),
                        "wire drift at {pos}/{k}: {a:?} vs {b:?}");
                }
            }
            Ok(())
        }
        check::<NormAccumulator>(&ups)?;
        check::<CharDiscAccumulator>(&ups)?;
        check::<CentDiscAccumulator>(&ups)?;
    }
}
