//! Decomposition-independence: the serial pipeline, the rayon driver and
//! both simulated-MPI drivers must produce the same SNP calls on the same
//! input (NORM accumulator, p-value cutoff) — the strongest evidence that
//! the parallelisation is semantics-preserving, which is what lets the
//! paper claim its speedups come "for free".

use gnumap_snp::core::accum::NormAccumulator;
use gnumap_snp::core::pipeline::run_serial_with;
use gnumap_snp::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource};
use simulate::{GenomeConfig, SnpCatalogConfig};

fn workload() -> (genome::DnaSeq, Vec<SequencedRead>) {
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let reference = simulate::generate_genome(
        &GenomeConfig {
            length: 6_000,
            repeat_families: 2,
            repeat_length: 150,
            repeat_copies: 2,
            repeat_divergence: 0.01,
            ..Default::default()
        },
        &mut rng,
    );
    let catalog = simulate::generate_snp_catalog(
        &reference,
        &SnpCatalogConfig {
            count: 8,
            ..Default::default()
        },
        &mut rng,
    );
    let individual = simulate::apply_snps_monoploid(&reference, &catalog);
    let cfg = ReadSimConfig {
        coverage: 12.0,
        ..Default::default()
    };
    let reads = simulate_reads(
        &ReadSource::Monoploid(&individual),
        cfg.read_count(reference.len()),
        &cfg,
        &mut rng,
    )
    .into_iter()
    .map(|r| r.read)
    .collect();
    (reference, reads)
}

fn call_keys(calls: &[SnpCall]) -> Vec<(usize, Base)> {
    calls.iter().map(|c| (c.pos, c.allele)).collect()
}

#[test]
fn all_four_drivers_agree() {
    let (reference, reads) = workload();
    let cfg = GnumapConfig::default();

    let serial = run_serial_with::<NormAccumulator>(&reference, &reads, &cfg);
    let serial_keys = call_keys(&serial.calls);
    assert!(
        !serial_keys.is_empty(),
        "fixture must produce at least one call"
    );

    let rayon = run_rayon::<NormAccumulator>(&reference, &reads, &cfg, 3);
    assert_eq!(call_keys(&rayon.calls), serial_keys, "rayon differs");

    let read_split = run_read_split::<NormAccumulator>(&reference, &reads, &cfg, 3).unwrap();
    assert_eq!(
        call_keys(&read_split.calls),
        serial_keys,
        "read-split differs"
    );

    let genome_split = run_genome_split::<NormAccumulator>(&reference, &reads, &cfg, 3).unwrap();
    assert_eq!(
        call_keys(&genome_split.calls),
        serial_keys,
        "genome-split differs"
    );
}

#[test]
fn rank_count_does_not_change_results() {
    let (reference, reads) = workload();
    let cfg = GnumapConfig::default();
    let one = run_read_split::<NormAccumulator>(&reference, &reads, &cfg, 1).unwrap();
    let keys = call_keys(&one.calls);
    for ranks in [2usize, 4, 7] {
        let r = run_read_split::<NormAccumulator>(&reference, &reads, &cfg, ranks).unwrap();
        assert_eq!(call_keys(&r.calls), keys, "read-split ranks={ranks}");
        let g = run_genome_split::<NormAccumulator>(&reference, &reads, &cfg, ranks).unwrap();
        assert_eq!(call_keys(&g.calls), keys, "genome-split ranks={ranks}");
    }
}

#[test]
fn repeated_runs_are_bit_deterministic() {
    let (reference, reads) = workload();
    let cfg = GnumapConfig::default();
    let a = run_read_split::<NormAccumulator>(&reference, &reads, &cfg, 4).unwrap();
    let b = run_read_split::<NormAccumulator>(&reference, &reads, &cfg, 4).unwrap();
    assert_eq!(a.calls, b.calls, "same input, same ranks → identical calls");
    assert_eq!(a.reads_mapped, b.reads_mapped);
}
