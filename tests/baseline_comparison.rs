//! GNUMAP-SNP vs the MAQ-style baseline — the qualitative claims behind
//! paper Table I and the introduction's repeat-region argument.

use gnumap_snp::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource};
use simulate::{ErrorProfile, GenomeConfig};
use std::collections::HashSet;

#[test]
fn both_callers_find_snps_in_unique_sequence() {
    let mut rng = ChaCha8Rng::seed_from_u64(100);
    let reference = simulate::generate_genome(
        &GenomeConfig {
            length: 8_000,
            repeat_families: 0,
            ..Default::default()
        },
        &mut rng,
    );
    let catalog = simulate::generate_snp_catalog(
        &reference,
        &simulate::SnpCatalogConfig {
            count: 8,
            ..Default::default()
        },
        &mut rng,
    );
    let individual = simulate::apply_snps_monoploid(&reference, &catalog);
    let cfg = ReadSimConfig {
        coverage: 14.0,
        ..Default::default()
    };
    let reads: Vec<_> = simulate_reads(
        &ReadSource::Monoploid(&individual),
        cfg.read_count(reference.len()),
        &cfg,
        &mut rng,
    )
    .into_iter()
    .map(|r| r.read)
    .collect();

    let truth: Vec<_> = catalog.iter().map(|s| (s.pos, s.alt)).collect();
    let truth_positions: HashSet<usize> = truth.iter().map(|&(p, _)| p).collect();

    let gnumap = run_pipeline(&reference, &reads, &GnumapConfig::default());
    let g = score_snp_calls(&gnumap.calls, &truth);

    let maq = run_baseline(&reference, &reads, &BaselineConfig::default(), &mut rng);
    let m =
        gnumap_snp::core::report::score_positions(maq.snps.iter().map(|s| s.pos), &truth_positions);

    // Paper Table I: on plain sequence the two approaches are comparable.
    assert!(g.sensitivity() >= 0.75, "gnumap {g:?}");
    assert!(m.sensitivity() >= 0.75, "baseline {m:?}");
    assert!(g.precision() >= 0.85, "gnumap {g:?}");
    assert!(m.precision() >= 0.85, "baseline {m:?}");
}

#[test]
fn gnumap_keeps_repeat_snps_that_the_baseline_drops() {
    // A SNP inside an exact two-copy repeat. The MAQ-style mapper gives
    // repeat reads mapping quality 0 and (with the paper-standard mapQ
    // filter) discards them — so the baseline goes blind there, while the
    // marginal accumulator still sees half-weight evidence from both
    // copies plus full-weight evidence from boundary-spanning reads.
    let mut rng = ChaCha8Rng::seed_from_u64(101);
    let mut reference = simulate::generate_genome(
        &GenomeConfig {
            length: 7_000,
            repeat_families: 0,
            ..Default::default()
        },
        &mut rng,
    );
    // Exact 300-bp duplication: 2000..2300 → 5000..5300.
    let unit: Vec<_> = (2_000..2_300).map(|p| reference.get(p)).collect();
    for (off, &b) in unit.iter().enumerate() {
        reference.set(5_000 + off, b);
    }
    let snp_pos = 2_150;
    let alt = reference.get(snp_pos).unwrap().transition();
    let mut individual = reference.clone();
    individual.set(snp_pos, Some(alt));

    let cfg = ReadSimConfig {
        coverage: 20.0,
        profile: ErrorProfile::perfect(), // isolate the repeat effect
        ..Default::default()
    };
    let reads: Vec<_> = simulate_reads(
        &ReadSource::Monoploid(&individual),
        cfg.read_count(reference.len()),
        &cfg,
        &mut rng,
    )
    .into_iter()
    .map(|r| r.read)
    .collect();

    let gnumap = run_pipeline(&reference, &reads, &GnumapConfig::default());
    let gnumap_found = gnumap
        .calls
        .iter()
        .any(|c| c.pos == snp_pos && c.allele == alt);
    assert!(gnumap_found, "GNUMAP-SNP must call the repeat-interior SNP");

    let maq = run_baseline(&reference, &reads, &BaselineConfig::default(), &mut rng);
    let baseline_found = maq.snps.iter().any(|s| s.pos == snp_pos);
    assert!(
        !baseline_found,
        "the mapQ-filtered baseline should be blind inside the exact repeat \
         (if this starts passing, the fixture's repeat is no longer exact)"
    );
}

#[test]
fn baseline_random_assignment_halves_repeat_evidence() {
    // With the mapQ filter disabled the baseline keeps repeat reads but
    // assigns each to a random copy — so the SNP site sees a ~50/50 mix of
    // alt evidence and (clean) reference evidence from the other copy,
    // exactly the bias the paper describes.
    let mut rng = ChaCha8Rng::seed_from_u64(102);
    let mut reference = simulate::generate_genome(
        &GenomeConfig {
            length: 7_000,
            repeat_families: 0,
            ..Default::default()
        },
        &mut rng,
    );
    let unit: Vec<_> = (2_000..2_300).map(|p| reference.get(p)).collect();
    for (off, &b) in unit.iter().enumerate() {
        reference.set(5_000 + off, b);
    }
    let snp_pos = 2_150;
    let alt = reference.get(snp_pos).unwrap().transition();
    let mut individual = reference.clone();
    individual.set(snp_pos, Some(alt));

    let cfg = ReadSimConfig {
        coverage: 24.0,
        profile: ErrorProfile::perfect(),
        ..Default::default()
    };
    let reads: Vec<_> = simulate_reads(
        &ReadSource::Monoploid(&individual),
        cfg.read_count(reference.len()),
        &cfg,
        &mut rng,
    )
    .into_iter()
    .map(|r| r.read)
    .collect();

    let no_filter = baseline::MaqConfig {
        min_mapping_quality: 0,
        ..Default::default()
    };
    let maq = run_baseline(
        &reference,
        &reads,
        &BaselineConfig {
            mapper: no_filter,
            ..Default::default()
        },
        &mut rng,
    );
    // The mirrored position in the second copy receives the *alt* reads
    // that were randomly assigned there: phantom evidence at 5150.
    let phantom = maq.snps.iter().find(|s| s.pos == 5_150);
    let real = maq.snps.iter().find(|s| s.pos == snp_pos);
    // At minimum, the evidence is corrupted: either the phantom site gets
    // called, or the real site's support is heavily contaminated. GNUMAP
    // by contrast puts ≤ half-weight evidence at each copy *consistently*.
    assert!(
        phantom.is_some() || real.is_none() || real.unwrap().depth < 20,
        "random assignment should visibly corrupt repeat evidence; got real={real:?} phantom={phantom:?}"
    );
}
