//! Property tests for the SNP-call wire codec the message-passing and
//! streaming drivers ship results through: decode ∘ encode must be the
//! identity on arbitrary call lists, and any wire whose length is not a
//! multiple of the stride must be rejected, never mis-parsed.

use gnumap_snp::core::driver::{decode_calls, encode_calls};
use gnumap_snp::core::SnpCall;
use gnumap_snp::prelude::Base;
use proptest::collection;
use proptest::prelude::*;

fn arb_call() -> impl Strategy<Value = SnpCall> {
    (
        0usize..3_000_000_000,
        0usize..4,
        0usize..4,
        0usize..5, // 4 encodes "no second allele"
        (0.0f64..500.0, 0.0f64..=1.0),
        proptest::array::uniform5(0.0f64..100.0),
    )
        .prop_map(
            |(pos, reference, allele, second, (statistic, p_adjusted), counts)| SnpCall {
                pos,
                reference: Base::from_index(reference),
                allele: Base::from_index(allele),
                second_allele: (second < 4).then(|| Base::from_index(second)),
                statistic,
                p_adjusted,
                counts,
            },
        )
}

proptest! {
    #[test]
    fn encode_decode_round_trips(calls in collection::vec(arb_call(), 0..40)) {
        let wire = encode_calls(&calls);
        prop_assert_eq!(decode_calls(&wire).unwrap(), calls);
    }

    #[test]
    fn truncated_wires_are_rejected(
        calls in collection::vec(arb_call(), 1..10),
        cut in 1usize..11,
    ) {
        let wire = encode_calls(&calls);
        let truncated = &wire[..wire.len() - cut];
        let err = decode_calls(truncated).unwrap_err();
        prop_assert_eq!(err.len, truncated.len());
    }
}

#[test]
fn empty_input_round_trips() {
    let wire = encode_calls(&[]);
    assert!(wire.is_empty());
    assert!(decode_calls(&wire).unwrap().is_empty());
}

#[test]
fn homozygous_call_keeps_second_allele_none() {
    let call = SnpCall {
        pos: 42,
        reference: Base::C,
        allele: Base::T,
        second_allele: None,
        statistic: 12.5,
        p_adjusted: 0.001,
        counts: [0.0, 1.0, 0.0, 9.0, 0.25],
    };
    let decoded = decode_calls(&encode_calls(std::slice::from_ref(&call))).unwrap();
    assert_eq!(decoded, vec![call]);
}
