//! Cross-crate integration tests: the full GNUMAP-SNP pipeline on
//! simulated workloads, exercising the paper's headline claims.

use gnumap_snp::core::snpcall::{Cutoff, SnpCallConfig};
use gnumap_snp::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource};
use simulate::{ErrorProfile, GenomeConfig, SnpCatalogConfig, Zygosity};

struct Setup {
    reference: genome::DnaSeq,
    truth: Vec<(usize, Base)>,
    reads: Vec<SequencedRead>,
}

fn setup(genome_len: usize, snps: usize, coverage: f64, seed: u64) -> Setup {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let reference = simulate::generate_genome(
        &GenomeConfig {
            length: genome_len,
            repeat_families: 1,
            repeat_length: 150,
            repeat_copies: 2,
            repeat_divergence: 0.02,
            ..Default::default()
        },
        &mut rng,
    );
    let catalog = simulate::generate_snp_catalog(
        &reference,
        &SnpCatalogConfig {
            count: snps,
            ..Default::default()
        },
        &mut rng,
    );
    let individual = simulate::apply_snps_monoploid(&reference, &catalog);
    let cfg = ReadSimConfig {
        coverage,
        ..Default::default()
    };
    let reads = simulate_reads(
        &ReadSource::Monoploid(&individual),
        cfg.read_count(genome_len),
        &cfg,
        &mut rng,
    )
    .into_iter()
    .map(|r| r.read)
    .collect();
    Setup {
        reference,
        truth: catalog.iter().map(|s| (s.pos, s.alt)).collect(),
        reads,
    }
}

#[test]
fn pipeline_has_high_sensitivity_and_precision() {
    let s = setup(8_000, 10, 14.0, 1);
    let report = run_pipeline(&s.reference, &s.reads, &GnumapConfig::default());
    let acc = score_snp_calls(&report.calls, &s.truth);
    assert!(acc.sensitivity() >= 0.8, "sensitivity too low: {acc:?}");
    assert!(acc.precision() >= 0.9, "precision too low: {acc:?}");
}

#[test]
fn clean_genome_produces_essentially_no_calls() {
    // Specificity: reads from an unmutated individual, with realistic
    // sequencing errors, must not generate a pile of SNPs.
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let reference = simulate::generate_genome(
        &GenomeConfig {
            length: 8_000,
            repeat_families: 0,
            ..Default::default()
        },
        &mut rng,
    );
    let cfg = ReadSimConfig {
        coverage: 14.0,
        ..Default::default()
    };
    let reads: Vec<_> = simulate_reads(
        &ReadSource::Monoploid(&reference),
        cfg.read_count(reference.len()),
        &cfg,
        &mut rng,
    )
    .into_iter()
    .map(|r| r.read)
    .collect();
    let report = run_pipeline(&reference, &reads, &GnumapConfig::default());
    assert!(
        report.calls.len() <= 2,
        "clean genome produced {} calls",
        report.calls.len()
    );
}

#[test]
fn snp_inside_a_repeat_is_still_called() {
    // The paper's repeat-region claim: plant a SNP inside a duplicated
    // segment. Single-alignment callers randomly split or discard the
    // evidence; the marginal accumulator still concentrates it.
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    // Build a genome with an exact 200-bp duplication.
    let mut reference = simulate::generate_genome(
        &GenomeConfig {
            length: 6_000,
            repeat_families: 0,
            ..Default::default()
        },
        &mut rng,
    );
    let unit: Vec<_> = (1_000..1_200).map(|p| reference.get(p)).collect();
    for (off, &b) in unit.iter().enumerate() {
        reference.set(4_000 + off, b);
    }
    // SNP in the middle of the *first* copy.
    let snp_pos = 1_100;
    let reference_base = reference.get(snp_pos).unwrap();
    let alt = reference_base.transition();
    let mut individual = reference.clone();
    individual.set(snp_pos, Some(alt));

    let cfg = ReadSimConfig {
        coverage: 20.0,
        profile: ErrorProfile::default(),
        ..Default::default()
    };
    let reads: Vec<_> = simulate_reads(
        &ReadSource::Monoploid(&individual),
        cfg.read_count(reference.len()),
        &cfg,
        &mut rng,
    )
    .into_iter()
    .map(|r| r.read)
    .collect();

    let report = run_pipeline(&reference, &reads, &GnumapConfig::default());
    assert!(
        report
            .calls
            .iter()
            .any(|c| c.pos == snp_pos && c.allele == alt),
        "SNP inside the repeat was missed; calls: {:?}",
        report.calls.iter().map(|c| c.pos).collect::<Vec<_>>()
    );
}

#[test]
fn fdr_cutoff_is_no_looser_than_alpha() {
    let s = setup(8_000, 10, 12.0, 4);
    let alpha = run_pipeline(&s.reference, &s.reads, &GnumapConfig::default());
    let fdr = run_pipeline(
        &s.reference,
        &s.reads,
        &GnumapConfig {
            calling: SnpCallConfig {
                cutoff: Cutoff::Fdr(0.05),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let acc_alpha = score_snp_calls(&alpha.calls, &s.truth);
    let acc_fdr = score_snp_calls(&fdr.calls, &s.truth);
    // BH at q=0.05 over mostly-null sites is conservative relative to a
    // raw α=0.05: no more false positives.
    assert!(acc_fdr.false_positives <= acc_alpha.false_positives);
    // Strong planted SNPs (tiny p-values) survive FDR control.
    assert!(acc_fdr.true_positives >= acc_alpha.true_positives.saturating_sub(1));
}

#[test]
fn diploid_pipeline_reports_heterozygous_sites() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let reference = simulate::generate_genome(
        &GenomeConfig {
            length: 8_000,
            repeat_families: 0,
            ..Default::default()
        },
        &mut rng,
    );
    let catalog = simulate::generate_snp_catalog(
        &reference,
        &SnpCatalogConfig {
            count: 8,
            heterozygous_fraction: 1.0, // all het: the hard case
            ..Default::default()
        },
        &mut rng,
    );
    let individual = simulate::apply_snps_diploid(&reference, &catalog, &mut rng);
    let cfg = ReadSimConfig {
        coverage: 24.0,
        ..Default::default()
    };
    let reads: Vec<_> = simulate_reads(
        &ReadSource::Diploid(&individual),
        cfg.read_count(reference.len()),
        &cfg,
        &mut rng,
    )
    .into_iter()
    .map(|r| r.read)
    .collect();

    let report = run_pipeline(
        &reference,
        &reads,
        &GnumapConfig {
            calling: SnpCallConfig {
                ploidy: Ploidy::Diploid,
                min_total: 6.0,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let truth: Vec<_> = catalog.iter().map(|s| (s.pos, s.alt)).collect();
    let acc = score_snp_calls(&report.calls, &truth);
    assert!(acc.true_positives >= 6, "het sensitivity too low: {acc:?}");
    // Most recovered sites should be flagged heterozygous (carry both the
    // reference and alternate alleles).
    let het_calls = report
        .calls
        .iter()
        .filter(|c| c.second_allele.is_some())
        .count();
    assert!(
        het_calls * 2 >= acc.true_positives,
        "too few calls marked heterozygous: {het_calls}/{}",
        acc.true_positives
    );
    assert_eq!(
        catalog
            .iter()
            .filter(|s| s.zygosity == Zygosity::Heterozygous)
            .count(),
        catalog.len()
    );
}

#[test]
fn indel_bearing_reads_still_map_and_call() {
    // Reads with occasional insertions/deletions exercise the Pair-HMM's
    // gap states end to end; with a non-zero window pad the mapper should
    // still place them and recover the planted SNPs.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let reference = simulate::generate_genome(
        &GenomeConfig {
            length: 6_000,
            repeat_families: 0,
            ..Default::default()
        },
        &mut rng,
    );
    let catalog = simulate::generate_snp_catalog(
        &reference,
        &SnpCatalogConfig {
            count: 6,
            ..Default::default()
        },
        &mut rng,
    );
    let individual = simulate::apply_snps_monoploid(&reference, &catalog);
    let cfg = ReadSimConfig {
        coverage: 16.0,
        insertion_rate: 0.002,
        deletion_rate: 0.002,
        ..Default::default()
    };
    let reads: Vec<_> = simulate_reads(
        &ReadSource::Monoploid(&individual),
        cfg.read_count(reference.len()),
        &cfg,
        &mut rng,
    )
    .into_iter()
    .map(|r| r.read)
    .collect();

    let mut config = GnumapConfig::default();
    config.mapping.window_pad = 3; // room for deletions at the window end
    let report = run_pipeline(&reference, &reads, &config);
    assert!(
        report.reads_mapped as f64 > reads.len() as f64 * 0.9,
        "indel reads should still map: {}/{}",
        report.reads_mapped,
        reads.len()
    );
    let truth: Vec<_> = catalog.iter().map(|s| (s.pos, s.alt)).collect();
    let acc = score_snp_calls(&report.calls, &truth);
    assert!(acc.true_positives >= 5, "{acc:?}");
}

#[test]
fn quality_aware_calling_beats_quality_blind_data() {
    // Same error pattern, but one run's reads carry honest qualities and
    // the other claims max quality everywhere. The honest run must not be
    // worse — the PWM is the paper's central extension.
    let s = setup(6_000, 8, 12.0, 6);
    let report_honest = run_pipeline(&s.reference, &s.reads, &GnumapConfig::default());
    let lying_reads: Vec<SequencedRead> = s
        .reads
        .iter()
        .map(|r| SequencedRead::with_uniform_quality(r.id.clone(), r.seq.clone(), 60))
        .collect();
    let report_lying = run_pipeline(&s.reference, &lying_reads, &GnumapConfig::default());
    let acc_honest = score_snp_calls(&report_honest.calls, &s.truth);
    let acc_lying = score_snp_calls(&report_lying.calls, &s.truth);
    assert!(
        acc_honest.false_positives <= acc_lying.false_positives,
        "honest qualities should not increase FPs: {acc_honest:?} vs {acc_lying:?}"
    );
}
