//! Integration tests for the paper's memory-optimization claims
//! (Tables II/III) and the simulated-scaling machinery (Figures 4/5) as
//! executable assertions.

use gnumap_snp::core::accum::{
    AccumulatorMode, CentDiscAccumulator, CharDiscAccumulator, GenomeAccumulator, NormAccumulator,
};
use gnumap_snp::core::driver::read_split::run_read_split;
use gnumap_snp::core::report::CommModel;
use gnumap_snp::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource};
use simulate::{GenomeConfig, SnpCatalogConfig};

fn workload(
    len: usize,
    snps: usize,
    coverage: f64,
    seed: u64,
) -> (genome::DnaSeq, Vec<(usize, Base)>, Vec<SequencedRead>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let reference = simulate::generate_genome(
        &GenomeConfig {
            length: len,
            repeat_families: 1,
            ..Default::default()
        },
        &mut rng,
    );
    let catalog = simulate::generate_snp_catalog(
        &reference,
        &SnpCatalogConfig {
            count: snps,
            ..Default::default()
        },
        &mut rng,
    );
    let individual = simulate::apply_snps_monoploid(&reference, &catalog);
    let cfg = ReadSimConfig {
        coverage,
        ..Default::default()
    };
    let reads = simulate_reads(
        &ReadSource::Monoploid(&individual),
        cfg.read_count(len),
        &cfg,
        &mut rng,
    )
    .into_iter()
    .map(|r| r.read)
    .collect();
    (
        reference,
        catalog.iter().map(|s| (s.pos, s.alt)).collect(),
        reads,
    )
}

/// Table II's shape as a test: accumulator bytes strictly ordered
/// NORM > CHARDISC > CENTDISC at identical genome length.
#[test]
fn accumulator_memory_ordering() {
    let len = 50_000;
    let norm = NormAccumulator::new(len).heap_bytes();
    let chard = CharDiscAccumulator::new(len).heap_bytes();
    let cent = CentDiscAccumulator::new(len).heap_bytes();
    assert!(norm > chard && chard > cent, "{norm} > {chard} > {cent}");
    // And the per-base arithmetic matches the mode constants.
    assert_eq!(norm, len * AccumulatorMode::Norm.bytes_per_base());
    assert_eq!(chard, len * AccumulatorMode::CharDisc.bytes_per_base());
    assert_eq!(cent, len * AccumulatorMode::CentDisc.bytes_per_base());
}

/// Table III's shape as a test: CHARDISC keeps precision while CENTDISC's
/// precision collapses on the same workload.
#[test]
fn centdisc_accuracy_collapses_but_chardisc_does_not() {
    let (reference, truth, reads) = workload(20_000, 10, 12.0, 31);
    let run = |mode: AccumulatorMode| {
        let report = run_pipeline(
            &reference,
            &reads,
            &GnumapConfig {
                accumulator: mode,
                ..Default::default()
            },
        );
        score_snp_calls(&report.calls, &truth)
    };
    let norm = run(AccumulatorMode::Norm);
    let chard = run(AccumulatorMode::CharDisc);
    let cent = run(AccumulatorMode::CentDisc);

    assert!(norm.precision() >= 0.9, "NORM baseline: {norm:?}");
    assert!(
        chard.precision() >= norm.precision() - 0.1,
        "CHARDISC must hold precision: {chard:?} vs {norm:?}"
    );
    assert!(
        cent.false_positives >= norm.false_positives + 5,
        "CENTDISC should produce a burst of false positives: {cent:?}"
    );
    assert!(
        cent.precision() < 0.8,
        "CENTDISC precision must collapse: {cent:?}"
    );
}

/// Figure 4/5 machinery: per-rank CPU shrinks with more ranks (read-split
/// divides the mapping work), so the simulated parallel time improves.
#[test]
fn simulated_scaling_improves_with_ranks() {
    let (reference, _, reads) = workload(15_000, 5, 10.0, 32);
    let cfg = GnumapConfig::default();
    let model = CommModel::default();
    let best = |ranks: usize| -> f64 {
        // Best of 3 to dodge scheduler interference on busy CI hosts.
        (0..3)
            .map(|_| {
                run_read_split::<NormAccumulator>(&reference, &reads, &cfg, ranks)
                    .unwrap()
                    .simulated_parallel_secs(&model)
                    .expect("MPI driver reports rank CPU")
            })
            .fold(f64::INFINITY, f64::min)
    };
    let t1 = best(1);
    let t4 = best(4);
    assert!(
        t4 < t1 * 0.6,
        "4 ranks should beat 1 rank by well over 40%: {t1:.3}s vs {t4:.3}s"
    );
}

/// The communication model itself.
#[test]
fn comm_model_arithmetic() {
    let model = CommModel {
        latency_secs: 1e-3,
        bytes_per_sec: 1e6,
    };
    let traffic = mpisim::TrafficStats {
        messages: 10,
        payload_bytes: 2_000_000,
        barriers: 0,
        collectives: 0,
    };
    // 10 ms latency + 2 s transfer.
    assert!((model.seconds(&traffic) - 2.01).abs() < 1e-9);
}
