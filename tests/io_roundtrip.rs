//! File-level integration: the pipeline run from FASTA + FASTQ files on
//! disk, exactly as a downstream user would drive it.

use genome::fasta::{read_fasta, write_fasta, FastaRecord};
use genome::fastq::{read_fastq, write_fastq};
use gnumap_snp::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simulate::reads::{simulate_reads, ReadSimConfig, ReadSource};
use simulate::{GenomeConfig, SnpCatalogConfig};
use std::fs::File;
use std::io::{BufReader, BufWriter};

#[test]
fn pipeline_from_files_matches_in_memory_run() {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let reference = simulate::generate_genome(
        &GenomeConfig {
            length: 5_000,
            repeat_families: 0,
            ..Default::default()
        },
        &mut rng,
    );
    let catalog = simulate::generate_snp_catalog(
        &reference,
        &SnpCatalogConfig {
            count: 5,
            ..Default::default()
        },
        &mut rng,
    );
    let individual = simulate::apply_snps_monoploid(&reference, &catalog);
    let cfg = ReadSimConfig {
        coverage: 12.0,
        ..Default::default()
    };
    let reads: Vec<_> = simulate_reads(
        &ReadSource::Monoploid(&individual),
        cfg.read_count(reference.len()),
        &cfg,
        &mut rng,
    )
    .into_iter()
    .map(|r| r.read)
    .collect();

    // Write to a unique temp directory.
    let dir = std::env::temp_dir().join(format!("gnumap-snp-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let fasta_path = dir.join("reference.fa");
    let fastq_path = dir.join("reads.fq");
    write_fasta(
        BufWriter::new(File::create(&fasta_path).unwrap()),
        &[FastaRecord {
            id: "sim_chr".into(),
            seq: reference.clone(),
        }],
        70,
    )
    .unwrap();
    write_fastq(BufWriter::new(File::create(&fastq_path).unwrap()), &reads).unwrap();

    // Read back and verify exact round trips.
    let fasta = read_fasta(BufReader::new(File::open(&fasta_path).unwrap())).unwrap();
    assert_eq!(fasta.len(), 1);
    assert_eq!(fasta[0].seq, reference);
    let reads_back = read_fastq(BufReader::new(File::open(&fastq_path).unwrap())).unwrap();
    assert_eq!(reads_back, reads);

    // Run the pipeline from the file-loaded data: identical calls.
    let from_memory = run_pipeline(&reference, &reads, &GnumapConfig::default());
    let from_files = run_pipeline(&fasta[0].seq, &reads_back, &GnumapConfig::default());
    assert_eq!(from_files.calls, from_memory.calls);

    // And the calls actually recover the planted SNPs.
    let truth: Vec<_> = catalog.iter().map(|s| (s.pos, s.alt)).collect();
    let acc = score_snp_calls(&from_files.calls, &truth);
    assert!(acc.true_positives >= 4, "{acc:?}");

    std::fs::remove_dir_all(&dir).ok();
}
