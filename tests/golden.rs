//! Golden snapshot tests.
//!
//! Each test renders an artifact to canonical text (timing and filesystem
//! paths normalised away) and compares it byte-for-byte against a file
//! under `tests/golden/`. To regenerate after an intentional behaviour
//! change, bless the snapshots:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --test golden
//! ```
//!
//! and review the diff like any other code change.

use gnumap_snp::cli::run_to_string;
use gnumap_snp::conformance::workload::{build, WorkloadSpec};
use gnumap_snp::core::accum::FixedAccumulator;
use gnumap_snp::core::pipeline::run_serial_with;
use gnumap_snp::core::report::RunReport;
use std::fmt::Write as _;
use std::path::Path;

fn assert_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden file {}; run with GOLDEN_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "snapshot {name} differs from tests/golden/{name}; \
         if the change is intentional, rerun with GOLDEN_BLESS=1 and review the diff"
    );
}

/// Canonical text form of a [`RunReport`]: everything deterministic, with
/// floats in shortest-round-trip form; wall-clock fields are omitted.
fn render_report(report: &RunReport) -> String {
    let mut s = String::new();
    writeln!(s, "reads_processed: {}", report.reads_processed).unwrap();
    writeln!(s, "reads_mapped: {}", report.reads_mapped).unwrap();
    writeln!(s, "accumulator_bytes: {}", report.accumulator_bytes).unwrap();
    match report.accumulator_digest {
        Some(d) => writeln!(s, "accumulator_digest: {d:#018x}").unwrap(),
        None => writeln!(s, "accumulator_digest: none").unwrap(),
    }
    writeln!(s, "calls: {}", report.calls.len()).unwrap();
    for c in &report.calls {
        writeln!(
            s,
            "  pos={} ref={} allele={} second={} statistic={:?} p_adjusted={:?} counts={:?}",
            c.pos,
            c.reference.to_char(),
            c.allele.to_char(),
            c.second_allele.map_or('-', |b| b.to_char()),
            c.statistic,
            c.p_adjusted,
            c.counts,
        )
        .unwrap();
    }
    s
}

#[test]
fn run_report_snapshot() {
    let wl = build(&WorkloadSpec {
        seed: 0x90_1d,
        genome_len: 2_000,
        snp_count: 4,
        coverage: 8.0,
        read_length: 62,
        repeat_families: 0,
    });
    let report = run_serial_with::<FixedAccumulator>(&wl.reference, &wl.reads, &wl.config);
    assert_golden("run_report.txt", &render_report(&report));
}

/// The `call` summary line, with the elapsed-seconds token and the
/// temp-directory path normalised.
#[test]
fn cli_summary_snapshot() {
    let dir = std::env::temp_dir().join(format!("gnumap-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dirs = dir.to_str().unwrap();

    run_to_string(&[
        "simulate",
        "--out-dir",
        dirs,
        "--genome-len",
        "2000",
        "--snps",
        "4",
        "--coverage",
        "8",
        "--seed",
        "17",
    ])
    .unwrap();
    let summary = run_to_string(&[
        "call",
        "--reference",
        &format!("{dirs}/reference.fa"),
        "--reads",
        &format!("{dirs}/reads.fq"),
        "--out",
        &format!("{dirs}/calls.vcf"),
    ])
    .unwrap();

    // "mapped A/B reads in 1.23s; wrote N calls to <path>" — keep the
    // deterministic fields, normalise timing and the path.
    let normalized = {
        let s = summary.replace(dirs, "<DIR>");
        let mut out = String::new();
        for token in s.split_whitespace() {
            if !out.is_empty() {
                out.push(' ');
            }
            if token.ends_with("s;") && token.trim_end_matches("s;").parse::<f64>().is_ok() {
                out.push_str("<TIME>;");
            } else {
                out.push_str(token);
            }
        }
        out.push('\n');
        out
    };
    assert_golden("cli_summary.txt", &normalized);
    std::fs::remove_dir_all(&dir).ok();
}
